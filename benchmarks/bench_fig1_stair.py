"""Fig. 1 — a scatter communication followed by a computation phase.

Reproduces the schematic: four processors, the root (P4) serving P1-P3 in
rank order through its single port; receive-end times form the stair.  The
report is the ASCII Gantt of the simulated run, and the bench asserts the
structural properties the figure illustrates.
"""

import pytest

from repro.core import LinearCost, uniform_counts
from repro.simgrid import Host, Link, Platform
from repro.tomo import run_seismic_app


def _schematic_platform():
    plat = Platform("fig1")
    for name in ("P1", "P2", "P3", "P4"):
        plat.add_host(Host(name, LinearCost(0.004)))
    for dst in ("P1", "P2", "P3"):
        plat.connect("P4", dst, Link.linear(0.001))
    plat.connect("P1", "P2", Link.linear(0.001))
    plat.connect("P1", "P3", Link.linear(0.001))
    plat.connect("P2", "P3", Link.linear(0.001))
    return plat


def bench_fig1_stair_effect(report, save_svg, benchmark):
    plat = _schematic_platform()
    hosts = ["P1", "P2", "P3", "P4"]
    counts = uniform_counts(1200, 4)

    result = benchmark(lambda: run_seismic_app(plat, hosts, counts))

    rec = result.run.recorder
    # The stair: each receive ends strictly after the previous one.
    ends = [rec.timeline(h).receive_end for h in hosts[:-1]]
    assert ends == sorted(ends)
    assert ends[0] == pytest.approx(0.3)   # 300 items at 1 ms
    assert ends[1] == pytest.approx(0.6)
    assert ends[2] == pytest.approx(0.9)
    # Idle-before-receive grows down the rank order (the black boxes).
    starts = [rec.timeline(h).first_receive_start for h in hosts[:-1]]
    assert starts == sorted(starts)

    report(
        "fig1_stair",
        "Fig. 1 — scatter then compute on 4 processors (P4 = root)\n"
        + rec.ascii_gantt(hosts, width=72)
        + f"\n\nstair area (sum of idle-before-receive): {rec.stair_area(hosts):.3f} s",
    )
    from repro.analysis import gantt_svg

    save_svg(
        "fig1_stair",
        gantt_svg(rec, hosts,
                  title="Fig. 1 — a scatter communication followed by a "
                  "computation phase"),
    )
