"""Topology ablation — shared inter-site backbones and collective trees.

The paper's single root serializes everything through its own port, so a
WAN backbone never binds for *its* scatter.  It binds as soon as multiple
senders cross sites at once — e.g. MPICH's binomial broadcast tree, whose
parallel cross-site hops a capacity-1 pipe re-serializes.  This bench
measures where each schedule wins on a two-site grid, completing the §1
collectives discussion with the topology dimension.
"""

import pytest

from repro.analysis import render_table
from repro.mpi import run_spmd
from repro.workloads import two_site_grid

LOCAL = [(f"a{i}", 0.01) for i in range(4)]
REMOTE = [(f"b{i}", 0.01) for i in range(4)]


def _bcast_duration(plat, algorithm, items=2000, hosts=None):
    hosts = hosts or plat.host_names

    def program(ctx):
        yield from ctx.bcast(
            "blob" if ctx.rank == 0 else None, root=0, items=items,
            algorithm=algorithm,
        )
        return ctx.now

    return run_spmd(plat, hosts, program).duration


#: Interleaved rank binding: the binomial tree's final round then carries
#: four cross-site sends at once (a_i -> b_i), which a capacity-1 backbone
#: re-serializes.
INTERLEAVED = ["a0", "b0", "a1", "b1", "a2", "b2", "a3", "b3"]


def bench_backbone_capacity_vs_tree(report, benchmark):
    rows = []
    durations = {}
    for capacity in (1, 2, None):
        plat = two_site_grid(
            LOCAL, REMOTE, lan_beta=1e-5, wan_beta=2e-4, backbone_capacity=capacity
        )
        flat = _bcast_duration(plat, "flat", hosts=INTERLEAVED)
        binom = _bcast_duration(plat, "binomial", hosts=INTERLEAVED)
        label = "unlimited" if capacity is None else str(capacity)
        durations[(label, "flat")] = flat
        durations[(label, "binomial")] = binom
        rows.append((label, f"{flat:.3f}", f"{binom:.3f}"))

    # The flat tree sends everything from the root — one flow at a time —
    # so backbone capacity is irrelevant to it.
    assert durations[("1", "flat")] == pytest.approx(
        durations[("unlimited", "flat")]
    )
    # The binomial tree's parallel cross-site hops benefit from capacity.
    assert durations[("unlimited", "binomial")] < durations[("1", "binomial")]
    assert durations[("2", "binomial")] < durations[("1", "binomial")]
    # And binomial still beats flat even when squeezed to one flow.
    assert durations[("1", "binomial")] < durations[("1", "flat")]

    plat1 = two_site_grid(LOCAL, REMOTE, wan_beta=2e-4, backbone_capacity=1)
    benchmark(lambda: _bcast_duration(plat1, "binomial", hosts=INTERLEAVED))
    report(
        "backbone_bcast",
        render_table(
            ["backbone capacity", "flat tree (s)", "binomial tree (s)"],
            rows,
            title="Broadcast across a two-site grid (4+4 hosts, WAN 20x "
            "slower than LAN)",
        ),
    )
