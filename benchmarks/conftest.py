"""Shared infrastructure for the benchmark harness.

Every ``bench_*`` file regenerates one of the paper's tables or figures.
The rendered rows/series are written to ``benchmarks/out/<name>.txt`` (and
echoed to stdout, visible with ``pytest -s``), while pytest-benchmark
collects the timing statistics.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import sys

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def report():
    """Writer fixture: ``report(name, text)`` persists a rendered report."""
    os.makedirs(OUT_DIR, exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = os.path.join(OUT_DIR, f"{name}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        # Echo for interactive runs; pytest captures this unless -s is given.
        sys.stdout.write(f"\n=== {name} ===\n{text}\n")

    return _write


@pytest.fixture(scope="session")
def save_svg():
    """Writer fixture: ``save_svg(name, svg_text)`` persists an SVG figure."""
    os.makedirs(OUT_DIR, exist_ok=True)

    def _write(name: str, svg: str) -> None:
        path = os.path.join(OUT_DIR, f"{name}.svg")
        with open(path, "w") as f:
            f.write(svg)

    return _write


@pytest.fixture(scope="session")
def table1_env():
    """The paper's platform and both rank orderings (built once)."""
    from repro.workloads import table1_platform, table1_rank_hosts

    platform = table1_platform()
    return {
        "platform": platform,
        "desc": table1_rank_hosts("bandwidth-desc"),
        "asc": table1_rank_hosts("bandwidth-asc"),
    }
