"""Incremental re-planning benchmark — the ``BENCH_incremental.json`` emitter.

Measures what the :class:`repro.core.incremental.IncrementalPlanner` buys
under membership churn: at each workload size, a seed plan is solved cold,
then processors are killed one front-survivor at a time and every re-plan
is timed twice — warm (through the planner's retained DP state) and cold
(an independent :func:`plan_scatter` on the survivor problem).  The warm
plan must byte-match the cold one; the speedup column is the whole point
of the engine (O(change) instead of O(p·n) per fault).

The instance family is increasing piecewise-linear knees (TCP-slow-start
shaped), so the auto route is ``dp-fast`` — the kernel whose suffix rows
the planner reuses.  Front-of-chain victims maximise suffix reuse and
model the ft_scatterv cascade where the planner warm-starts every round
from the previous survivor state; the victim index is recorded per row.

Two entry points:

* ``python benchmarks/bench_incremental.py [--sizes N,N,...]`` — standalone;
* ``pytest benchmarks/bench_incremental.py`` — the emitter as a ``slow``
  benchmark with the ≥ 5× single-death re-plan assertion at n=1e5, plus a
  ``bench``-marked nightly gate failing on >2× regression vs the
  committed JSON.

JSON layout (``schema: bench-incremental/v1``)::

    points[].n                    workload size
    points[].cold_seed_s          first (state-building) solve
    points[].deaths[].killed_total  cumulative processor deaths so far
    points[].deaths[].victim      index of the processor removed
    points[].deaths[].replan_s    warm re-plan through the planner
    points[].deaths[].cold_s      independent cold solve, same survivors
    points[].deaths[].speedup     cold_s / replan_s
    points[].deaths[].warm_rows   DP rows reused from the retained state
    points[].deaths[].byte_match  warm counts/makespans == cold (must hold)

Lower is better for the seconds columns; ``byte_match`` must be ``true``
on every row (the same guarantee the ``incremental-matches-cold`` oracle
and ``fuzz_incremental`` enforce instance-by-instance).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import time
from typing import List, Optional, Sequence

import pytest

from repro.core import (
    IncrementalPlanner,
    PiecewiseLinearCost,
    Processor,
    ScatterProblem,
    ZeroCost,
    plan_scatter,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_incremental.json")

#: Workload sizes for the churn ladder.  A cold dp-fast solve at n=1e5
#: already takes tens of seconds on one core; larger rungs (1e6+) are
#: reachable standalone via ``--sizes`` but deliberately excluded from
#: the default ladder so the slow-tier emitter stays minutes, not hours.
SIZES = (10_000, 100_000)

#: Cumulative death counts measured at each size.
DEATH_COUNTS = (1, 2, 4)


def _knee_problem(rng: random.Random, p: int, n: int) -> ScatterProblem:
    """Increasing piecewise-linear costs (bandwidth knees) over [0, n]."""

    def knee() -> PiecewiseLinearCost:
        x1 = rng.randint(1, max(1, n // 3))
        r1 = rng.uniform(1e-6, 5e-5)
        r2 = rng.uniform(1e-6, 5e-5)
        return PiecewiseLinearCost(
            [(0, 0), (x1, r1 * x1), (n, r1 * x1 + r2 * (n - x1))]
        )

    procs = [Processor(f"P{i + 1}", knee(), knee()) for i in range(p - 1)]
    procs.append(Processor(f"P{p}", ZeroCost(), knee()))
    return ScatterProblem(procs, n)


def run_churn_point(n: int, *, p: int = 8, seed: int = 7,
                    death_counts: Sequence[int] = DEATH_COUNTS) -> dict:
    """Seed solve + cumulative front-victim deaths at one workload size."""
    problem = _knee_problem(random.Random(seed), p, n)
    planner = IncrementalPlanner()

    t0 = time.perf_counter()
    seed_plan = planner.plan(problem)
    cold_seed_s = time.perf_counter() - t0

    deaths: List[dict] = []
    current = problem
    killed = 0
    for target in death_counts:
        while killed < target:
            current = ScatterProblem(current.processors[1:], current.n)
            killed += 1
        t0 = time.perf_counter()
        warm = planner.plan(current)
        replan_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        cold = plan_scatter(current, order_policy=None)
        cold_s = time.perf_counter() - t0
        byte_match = (
            warm.counts == cold.counts
            and warm.makespan == cold.makespan
            and warm.makespan_exact == cold.makespan_exact
            and warm.algorithm == cold.algorithm
        )
        deaths.append(
            {
                "killed_total": killed,
                "victim": 0,
                "replan_s": round(replan_s, 6),
                "cold_s": round(cold_s, 6),
                "speedup": round(cold_s / max(replan_s, 1e-9), 1),
                "warm_rows": warm.info.get("incremental", {}).get("warm_rows", 0),
                "byte_match": byte_match,
            }
        )
    return {
        "n": n,
        "cold_seed_s": round(cold_seed_s, 6),
        "seed_algorithm": seed_plan.algorithm,
        "deaths": deaths,
    }


def run_incremental_bench(*, p: int = 8, seed: int = 7, sizes: Sequence[int] = SIZES,
                          death_counts: Sequence[int] = DEATH_COUNTS,
                          path: Optional[str] = BENCH_PATH) -> dict:
    """Run the churn ladder and (optionally) write ``BENCH_incremental.json``."""
    payload = {
        "schema": "bench-incremental/v1",
        "generated_by": "benchmarks/bench_incremental.py",
        "instance": {"kind": "piecewise-knee", "seed": seed, "p": p},
        "points": [
            run_churn_point(n, p=p, seed=seed, death_counts=death_counts)
            for n in sizes
        ],
    }
    if path:
        with open(path, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
    return payload


def _render(payload: dict) -> str:
    lines = []
    for point in payload["points"]:
        lines.append(
            f"n={point['n']:>9,}  seed solve {point['cold_seed_s']:8.3f}s "
            f"({point['seed_algorithm']})"
        )
        for row in point["deaths"]:
            lines.append(
                f"  deaths={row['killed_total']}  "
                f"replan {row['replan_s']:8.4f}s  cold {row['cold_s']:8.3f}s  "
                f"{row['speedup']:>8.1f}x  warm-rows {row['warm_rows']}  "
                f"byte-match {row['byte_match']}"
            )
    return "\n".join(lines)


@pytest.mark.slow
def bench_incremental(report):
    """Emitter benchmark: byte-match everywhere + the ≥ 5× re-plan gate."""
    payload = run_incremental_bench()

    for point in payload["points"]:
        for row in point["deaths"]:
            assert row["byte_match"], (point["n"], row)

    by_n = {point["n"]: point for point in payload["points"]}
    single_death = by_n[100_000]["deaths"][0]
    assert single_death["killed_total"] == 1
    assert single_death["speedup"] >= 5.0, single_death

    report("incremental", _render(payload) + f"\nwrote {BENCH_PATH}")


@pytest.mark.bench
def bench_incremental_regression(report):
    """Nightly bench-smoke: n=1e4 churn point, fail on >2x regression.

    Compares the warm re-plan and cold survivor solve against the
    *committed* ``BENCH_incremental.json``; the fresh payload is written
    to ``benchmarks/out/bench_incremental_smoke.json`` for upload.
    """
    with open(BENCH_PATH) as f:
        committed = json.load(f)

    fresh = run_incremental_bench(sizes=(10_000,), path=None)
    out_path = os.path.join(
        os.path.dirname(__file__), "out", "bench_incremental_smoke.json"
    )
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w") as f:
        json.dump(fresh, f, indent=2, sort_keys=True)
        f.write("\n")

    fresh_pt = fresh["points"][0]
    for row in fresh_pt["deaths"]:
        assert row["byte_match"], row
    committed_pts = {point["n"]: point for point in committed["points"]}
    base_pt = committed_pts.get(fresh_pt["n"])
    if base_pt is not None:
        base_rows = {row["killed_total"]: row for row in base_pt["deaths"]}
        for row in fresh_pt["deaths"]:
            base_row = base_rows.get(row["killed_total"])
            if base_row is None:
                continue
            # Absolute floors keep the 2x ratio gate from tripping on
            # timer noise: the committed replan_s is sub-millisecond and
            # the cold solve sub-second, both jittery on shared runners.
            assert row["replan_s"] <= max(
                2.0 * base_row["replan_s"], 0.01
            ), (row, base_row)
            assert row["cold_s"] <= max(
                2.0 * base_row["cold_s"], 1.0
            ), (row, base_row)

    report(
        "bench_incremental_smoke",
        _render(fresh) + f"\nwrote {out_path}",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--p", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--sizes", default=",".join(str(n) for n in SIZES),
        help="comma-separated workload sizes",
    )
    parser.add_argument("--out", default=BENCH_PATH)
    args = parser.parse_args(argv)
    sizes = tuple(int(s) for s in args.sizes.split(","))
    payload = run_incremental_bench(p=args.p, seed=args.seed, sizes=sizes,
                                    path=args.out)
    print(_render(payload))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
