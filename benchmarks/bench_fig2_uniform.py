"""Fig. 2 — original program execution (uniform data distribution).

Paper's measurements (817,101 rays, 16 processors, descending-bandwidth
rank order): earliest finish 259 s, latest 853 s — a huge imbalance, the
laggards being the two R12K/300 CPUs of *seven*.

The pure cost model lands at ~226 s / ~829 s (the paper's extra seconds
are OS/network overhead its linear model omits); identical shape: same
ordering of finish times, same laggard, ~70% imbalance.
"""

import pytest

from repro.analysis import render_figure, summarize
from repro.core import uniform_counts
from repro.tomo import run_seismic_app
from repro.workloads import PAPER_RAY_COUNT


def bench_fig2_uniform(report, save_svg, benchmark, table1_env):
    platform, hosts = table1_env["platform"], table1_env["desc"]
    counts = uniform_counts(PAPER_RAY_COUNT, 16)

    result = benchmark(lambda: run_seismic_app(platform, hosts, counts))

    working = [t for t, c in zip(result.finish_times, result.counts) if c > 0]
    earliest, latest = min(working), max(working)
    # Shape assertions vs the paper (259 s / 853 s measured).
    assert 200 < earliest < 280
    assert 780 < latest < 880
    assert result.imbalance > 0.5
    laggard = result.rank_hosts[result.finish_times.index(latest)]
    assert laggard.startswith("seven")

    summary = summarize(
        "fig2-uniform", result.finish_times, result.comm_times, result.counts
    )
    report(
        "fig2_uniform",
        render_figure(
            result.rank_hosts,
            result.finish_times,
            result.comm_times,
            list(result.counts),
            title=(
                "Fig. 2 — uniform distribution, n=817,101 "
                f"(model: {earliest:.0f}-{latest:.0f} s; paper measured 259-853 s)"
            ),
        )
        + f"\n\nimbalance: {100 * summary.imbalance:.1f}%  makespan: {summary.makespan:.1f} s",
    )
    from repro.analysis import figure_svg

    save_svg(
        "fig2_uniform",
        figure_svg(
            result.rank_hosts,
            result.finish_times,
            result.comm_times,
            list(result.counts),
            title="Fig. 2 — original program execution (uniform distribution)",
        ),
    )
