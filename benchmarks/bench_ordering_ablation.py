"""§4.3 ablation — processor ordering policies.

Theorem 3 proves descending-bandwidth is optimal for rational solutions of
linear instances.  This bench quantifies the policy's margin on the Table 1
platform and on random heterogeneous grids, against ascending (Fig. 4),
fastest-CPU-first, random, and — for small p — the exhaustive optimum.
"""

import random

import pytest

from repro.analysis import render_table
from repro.core import (
    apply_policy,
    brute_force_best_order,
    guarantee_gap,
    solve_closed_form,
    solve_heuristic,
)
from repro.workloads import PAPER_RAY_COUNT, random_linear_problem, table1_problem

POLICY_LIST = ["bandwidth-desc", "bandwidth-asc", "fastest-first", "random", "original"]


def bench_policies_on_table1(report, benchmark):
    prob = table1_problem(PAPER_RAY_COUNT, order="cpu-number")
    rng = random.Random(2003)
    rows = []
    results = {}
    for policy in POLICY_LIST:
        ordered = apply_policy(prob, policy, rng=rng)
        res = solve_heuristic(ordered)
        results[policy] = res.makespan
        rows.append((policy, f"{res.makespan:.2f}",
                     f"{res.makespan - 0.0:.2f}"))
    base = results["bandwidth-desc"]
    rows = [
        (policy, f"{t:.2f}", f"+{t - base:.2f}") for policy, t in results.items()
    ]

    assert results["bandwidth-desc"] <= min(results.values()) + 1e-9
    assert results["bandwidth-asc"] > results["bandwidth-desc"]

    benchmark(lambda: solve_heuristic(apply_policy(prob, "bandwidth-desc")))
    report(
        "ordering_policies_table1",
        render_table(
            ["policy", "makespan (s)", "vs Theorem 3"],
            rows,
            title="Ordering policies on Table 1, n=817,101 (Theorem 3 wins)",
        ),
    )


def bench_policy_margin_random(report, benchmark):
    """Average penalty of each policy over random heterogeneous grids."""
    rng = random.Random(7)
    trials = 40
    penalties = {p: 0.0 for p in POLICY_LIST}
    for _ in range(trials):
        prob = random_linear_problem(rng, rng.randint(4, 10), 20_000)
        base = None
        for policy in POLICY_LIST:
            res = solve_heuristic(apply_policy(prob, policy, rng=rng))
            if policy == "bandwidth-desc":
                base = res.makespan
            penalties[policy] += res.makespan
    rows = [
        (p, f"{penalties[p] / trials:.4f}",
         f"{100 * (penalties[p] / penalties['bandwidth-desc'] - 1):+.2f}%")
        for p in POLICY_LIST
    ]
    assert penalties["bandwidth-desc"] <= min(penalties.values()) + 1e-6

    benchmark(
        lambda: solve_heuristic(
            apply_policy(random_linear_problem(rng, 8, 20_000), "bandwidth-desc")
        )
    )
    report(
        "ordering_policies_random",
        render_table(
            ["policy", "mean makespan (s)", "vs Theorem 3"],
            rows,
            title=f"Ordering policies over {trials} random grids",
        ),
    )


def bench_exhaustive_validation(report, benchmark):
    """Theorem 3 vs brute force: descending bandwidth is within the Eq. 4
    rounding gap of the best of all (p-1)! orders (§4.4's guarantee)."""
    rng = random.Random(11)
    rows = []
    for trial in range(5):
        prob = random_linear_problem(rng, 5, 300)
        _, best, table = brute_force_best_order(prob, solve_closed_form)
        desc = solve_closed_form(apply_policy(prob, "bandwidth-desc"))
        gap = float(guarantee_gap(prob))
        assert desc.makespan <= best.makespan + gap + 1e-9
        rows.append(
            (
                trial,
                f"{best.makespan:.5f}",
                f"{desc.makespan:.5f}",
                f"{desc.makespan - best.makespan:.2e}",
                f"{gap:.2e}",
            )
        )

    benchmark(lambda: brute_force_best_order(
        random_linear_problem(rng, 4, 100), solve_closed_form
    ))
    report(
        "ordering_exhaustive",
        render_table(
            ["trial", "best of 4! orders (s)", "Theorem 3 order (s)", "excess", "Eq.4 gap"],
            rows,
            title="Theorem 3 vs exhaustive ordering search (5 random instances)",
        ),
    )
