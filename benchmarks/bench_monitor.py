"""§3 ablation — the "monitor daemon" note: forecasting quality matters.

Compares forecasters feeding the planner on a drifting-load grid: the plan
computed from each forecaster's prediction is executed on the true loaded
platform, so forecast error converts directly into makespan.
"""

import pytest

from repro.analysis import render_table
from repro.monitor import (
    AdaptiveBest,
    ExponentialSmoothing,
    LastValue,
    LoadMonitor,
    RunningMean,
    SlidingWindowMedian,
    plan_with_monitor,
)
from repro.simgrid import CompositeNoise, JitterNoise, SpikeNoise
from repro.tomo import plan_counts, run_seismic_app
from repro.workloads import table1_platform, table1_rank_hosts

N = 80_000


def _loaded_platform():
    """leda under sustained 1.8x load plus spiky jitter on everything."""
    plat = table1_platform()
    for host in plat.hosts.values():
        noise = [JitterNoise(seed=5, amplitude=0.04)]
        if host.machine == "leda":
            noise.append(SpikeNoise(host.name, 0.0, 1e9, slowdown=1.8))
        host.noise = CompositeNoise(noise)
    return plat


def bench_forecaster_shootout(report, benchmark):
    hosts = table1_rank_hosts()
    plat = _loaded_platform()

    # The daemon samples every 10 s for 10 minutes before the scatter.
    def informed_run(factory):
        monitor = LoadMonitor(forecaster_factory=factory)
        for t in range(0, 600, 10):
            monitor.sample_platform(plat, float(t))
        counts, _ = plan_with_monitor(plat, hosts, N, monitor)
        return run_seismic_app(plat, hosts, counts)

    stale_counts = plan_counts(table1_platform(), hosts, N)
    stale = run_seismic_app(plat, hosts, stale_counts)

    rows = [("no monitor (stale costs)", f"{stale.makespan:.2f}",
             f"{100 * stale.imbalance:.1f}%")]
    results = {}
    for label, factory in [
        ("LastValue", LastValue),
        ("RunningMean", RunningMean),
        ("SlidingWindowMedian(10)", lambda: SlidingWindowMedian(10)),
        ("ExponentialSmoothing(0.3)", lambda: ExponentialSmoothing(0.3)),
        ("AdaptiveBest portfolio (NWS)", AdaptiveBest),
    ]:
        res = informed_run(factory)
        results[label] = res.makespan
        rows.append((label, f"{res.makespan:.2f}", f"{100 * res.imbalance:.1f}%"))

    # Every forecaster must beat the stale plan on this sustained load...
    assert all(m < stale.makespan for m in results.values())
    # ...and the NWS portfolio must be competitive with its best member.
    assert results["AdaptiveBest portfolio (NWS)"] <= min(results.values()) * 1.02

    benchmark(lambda: informed_run(AdaptiveBest))
    report(
        "monitor_forecasters",
        render_table(
            ["planning input", "makespan (s)", "imbalance"],
            rows,
            title=f"Monitor-informed planning under sustained leda load, n={N:,}",
        ),
    )
