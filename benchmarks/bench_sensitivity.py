"""Sensitivity series — when does the paper's transformation pay?

Sweeps the gain (uniform/balanced makespan) over the dimensions a grid
operator controls: processor-speed spread, communication/computation cost
ratio, and problem size.  The paper's single platform sits at spread ≈ 4×,
negligible comm ratio, n = 817k — squarely in the high-gain regime; these
series map the boundaries of that regime.
"""

import pytest

from repro.analysis import (
    ParallelSweepEvaluator,
    comm_ratio_sweep,
    heterogeneity_sweep,
    problem_size_sweep,
    render_table,
)

SPREADS = [1.0, 2.0, 4.0, 8.0, 16.0]
RATIOS = [0.01, 0.1, 0.5, 1.0, 2.0, 5.0]
SIZES = [100, 1_000, 10_000, 100_000, 817_101]


@pytest.fixture(scope="module")
def evaluator():
    """Shared parallel evaluator; values are identical to sequential runs."""
    with ParallelSweepEvaluator() as ev:
        yield ev


def bench_gain_vs_heterogeneity(report, benchmark, evaluator):
    points = benchmark(lambda: heterogeneity_sweep(SPREADS, evaluator=evaluator))
    rows = [
        (f"{pt.x:.0f}x", f"{pt.uniform_makespan:.2f}",
         f"{pt.balanced_makespan:.2f}", f"{pt.gain:.2f}x")
        for pt in points
    ]
    gains = [pt.gain for pt in points]
    assert gains[0] == pytest.approx(1.0, abs=0.02)  # homogeneous: no gain
    assert all(b >= a - 1e-9 for a, b in zip(gains, gains[1:]))  # monotone
    assert gains[-1] > 2.0
    report(
        "sensitivity_heterogeneity",
        render_table(
            ["speed spread", "uniform (s)", "balanced (s)", "gain"],
            rows,
            title="Balancing gain vs processor heterogeneity "
            "(p=16, n=100k; Table 1 sits near 4x)",
        ),
    )


def bench_gain_vs_comm_ratio(report, benchmark, evaluator):
    points = benchmark(lambda: comm_ratio_sweep(RATIOS, evaluator=evaluator))
    rows = [
        (f"{pt.x:g}", f"{pt.uniform_makespan:.2f}",
         f"{pt.balanced_makespan:.2f}", f"{pt.gain:.2f}x")
        for pt in points
    ]
    gains = {pt.x: pt.gain for pt in points}
    # Compute-bound: full heterogeneity gain; comm-bound: the serial port
    # dominates every schedule and the gain shrinks.
    assert gains[0.01] > gains[5.0]
    assert gains[5.0] < 1.6
    report(
        "sensitivity_comm_ratio",
        render_table(
            ["comm/comp ratio", "uniform (s)", "balanced (s)", "gain"],
            rows,
            title="Balancing gain vs communication share "
            "(gain collapses once the root port dominates)",
        ),
    )


def bench_gain_vs_problem_size(report, benchmark, evaluator):
    points = benchmark(lambda: problem_size_sweep(SIZES, evaluator=evaluator))
    rows = [
        (f"{int(pt.x):,}", f"{pt.uniform_makespan:.3f}",
         f"{pt.balanced_makespan:.3f}", f"{pt.gain:.3f}x")
        for pt in points
    ]
    gains = [pt.gain for pt in points]
    # The asymptotic (rational-limit) gain is reached early and is stable.
    assert gains[-1] == pytest.approx(gains[-2], rel=0.02)
    assert gains[-1] > 1.8
    report(
        "sensitivity_problem_size",
        render_table(
            ["n", "uniform (s)", "balanced (s)", "gain"],
            rows,
            title="Balancing gain vs problem size (Table 1 platform)",
        ),
    )
