"""Setup shim.

The metadata lives in pyproject.toml; this file exists so that editable
installs work in offline environments where the ``wheel`` package (needed
by the PEP 517 editable path of older setuptools) is unavailable.
"""

from setuptools import setup

setup()
