"""Coverage for runtime plumbing not exercised elsewhere."""

import pytest

from repro.core import LinearCost
from repro.mpi import MpiError, MpiRun, run_spmd
from repro.mpi.communicator import Communicator
from repro.simgrid import Host, Link, Network, Platform, Simulator


def plat2():
    plat = Platform("rt")
    plat.add_host(Host("x", LinearCost(0.01)))
    plat.add_host(Host("y", LinearCost(0.02)))
    plat.connect("x", "y", Link.linear(1e-3))
    return plat


class TestCommunicatorValidation:
    def make_comm(self, **kwargs):
        plat = plat2()
        sim = Simulator()
        net = Network(sim, plat)
        hosts = [plat.hosts["x"], plat.hosts["y"]]
        return Communicator(sim, net, hosts, **kwargs)

    def test_empty_rejected(self):
        plat = plat2()
        sim = Simulator()
        with pytest.raises(MpiError, match="at least one"):
            Communicator(sim, Network(sim, plat), [])

    def test_trace_names_length(self):
        with pytest.raises(MpiError, match="length"):
            self.make_comm(trace_names=["only-one"])

    def test_trace_names_unique(self):
        with pytest.raises(MpiError, match="unique"):
            self.make_comm(trace_names=["same", "same"])

    def test_mailboxes_cached(self):
        comm = self.make_comm()
        assert comm.mailbox(0, 1, 7) is comm.mailbox(0, 1, 7)
        assert comm.mailbox(0, 1, 7) is not comm.mailbox(0, 1, 8)


class TestMpiRunHelpers:
    def run(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, [1, 2, 3])
            else:
                yield from ctx.recv(0)
                yield from ctx.compute(100)
            return ctx.rank

        return run_spmd(plat2(), ["x", "y"], program)

    def test_finish_and_comm_times(self):
        run = self.run()
        finish = run.finish_times()
        comm = run.comm_times()
        assert len(finish) == len(comm) == 2
        assert comm[0] == pytest.approx(0.003)  # sender's wire time
        assert comm[1] == pytest.approx(0.003)  # receiver's wire time
        assert finish[1] == pytest.approx(0.003 + 2.0)

    def test_rank_hosts_preserved(self):
        run = self.run()
        assert run.rank_hosts == ["x", "y"]
        assert run.trace_names == ["x", "y"]

    def test_duration_is_makespan(self):
        run = self.run()
        assert run.duration == pytest.approx(max(run.finish_times()))


class TestRankContextHostOf:
    def test_host_of_other_rank(self):
        def program(ctx):
            return ctx.host_of(1 - ctx.rank).name
            yield  # pragma: no cover

        run = run_spmd(plat2(), ["x", "y"], program)
        assert run.results == ["y", "x"]

    def test_host_of_bad_rank(self):
        def program(ctx):
            ctx.host_of(9)
            return None
            yield  # pragma: no cover

        with pytest.raises(MpiError, match="out of range"):
            run_spmd(plat2(), ["x", "y"], program)
