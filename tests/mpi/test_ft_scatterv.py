"""Tests for the fault-tolerant scatter (``repro.mpi.ft_scatterv``)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinearCost, plan_scatter
from repro.mpi import MpiError, RecvTimeout, ScatterOutcome, run_spmd
from repro.simgrid import (
    FaultPlan,
    Host,
    HostFailure,
    Link,
    LinkFailure,
    Platform,
)
from repro.verify import run_oracles


def make_platform(p=5, alpha=0.01, beta=0.001):
    plat = Platform("ft-test")
    for i in range(p):
        plat.add_host(Host(f"h{i}", LinearCost(alpha * (1 + 0.2 * i))))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(beta))
    return plat


def ft_program(ctx, data, counts, root, scatter_kwargs):
    outcome = yield from ctx.ft_scatterv(
        data if ctx.rank == root else None,
        counts if ctx.rank == root else None,
        root=root,
        **scatter_kwargs,
    )
    return outcome


def run_ft(plat, n, counts, faults=None, **scatter_kwargs):
    hosts = plat.host_names
    root = len(hosts) - 1
    return run_spmd(
        plat,
        hosts,
        ft_program,
        list(range(n)),
        counts,
        root,
        scatter_kwargs,
        faults=faults,
    ), root


class TestHealthy:
    def test_matches_scatterv_when_no_faults(self):
        plat = make_platform()
        counts = [300, 200, 200, 200, 100]
        run, root = run_ft(plat, 1000, counts)
        chunks = [r.chunk for r in run.results]
        flat = [x for c in chunks for x in c]
        assert sorted(flat) == list(range(1000))
        assert [len(c) for c in chunks] == counts
        for r in run.results:
            assert isinstance(r, ScatterOutcome)
            assert r.survivors == (0, 1, 2, 3, 4)
            assert r.dead == ()
            assert r.retries == 0 and r.replans == 0
            assert not r.degraded

    def test_validates_counts(self):
        plat = make_platform()

        def program(ctx):
            return (
                yield from ctx.ft_scatterv(
                    list(range(10)) if ctx.rank == 4 else None,
                    [3, 3, 3] if ctx.rank == 4 else None,  # wrong length
                    root=4,
                )
            )

        with pytest.raises(MpiError, match="3 entries for 5 ranks"):
            run_spmd(plat, plat.host_names, program)


class TestOneDeath:
    COUNTS = [2000, 2000, 2000, 2000, 2000]

    def _run(self, seed=0):
        plat = make_platform()
        faults = FaultPlan(seed=seed).crash("h1", at=1.0)
        return run_ft(plat, 10_000, self.COUNTS, faults=faults, retries=2)

    def test_survivors_get_full_replanned_share(self):
        run, root = self._run()
        outcome = run.results[root]
        assert outcome.dead == (1,)
        assert outcome.survivors == (0, 2, 3, 4)
        assert outcome.replans >= 1
        assert isinstance(run.results[1], HostFailure)
        assert run.failed_ranks() == [1]

        # Every one of the 10k items lands on exactly one survivor.
        flat = [
            x for r, res in enumerate(run.results) if r != 1 for x in res.chunk
        ]
        assert sorted(flat) == list(range(10_000))
        assert outcome.lost_items == 0
        assert outcome.redistributed_items > 0
        assert outcome.degraded

        # The root's view of the final counts matches what ranks received.
        for r, res in enumerate(run.results):
            if r != 1:
                assert outcome.counts[r] == len(res.chunk)
        assert outcome.counts[1] == 0

    def test_bit_identical_across_repeats(self):
        run_a, root = self._run()
        run_b, _ = self._run()
        assert run_a.duration == run_b.duration
        assert run_a.results[root].counts == run_b.results[root].counts
        assert run_a.results[root].retries == run_b.results[root].retries

    def test_plain_scatterv_fails_loudly_under_same_plan(self):
        plat = make_platform()
        faults = FaultPlan().crash("h1", at=1.0)

        def program(ctx):
            chunk = yield from ctx.scatterv(
                list(range(10_000)) if ctx.rank == 4 else None,
                TestOneDeath.COUNTS if ctx.rank == 4 else None,
                root=4,
            )
            return list(chunk)

        # No hang: the root's send into the dead host raises LinkFailure.
        with pytest.raises(LinkFailure, match="h1"):
            run_spmd(plat, plat.host_names, program, faults=faults)


class TestManyDeaths:
    def test_all_workers_die_root_absorbs(self):
        plat = make_platform()
        faults = (
            FaultPlan()
            .crash("h0", at=0.5)
            .crash("h1", at=0.6)
            .crash("h2", at=0.7)
            .crash("h3", at=0.8)
        )
        run, root = run_ft(
            plat, 5000, [1000] * 5, faults=faults, retries=1
        )
        outcome = run.results[root]
        assert outcome.survivors == (4,)
        assert sorted(outcome.chunk) != []
        # The root absorbed everything that could be reclaimed.
        assert outcome.lost_items + len(outcome.chunk) == 5000
        assert outcome.lost_items == 0  # nothing delivered before t=0.5

    def test_death_after_delivery_loses_the_chunk(self):
        """A rank that dies *after* receiving its chunk takes it down.

        Rank 0 is the first destination (chunk delivered at t=0.2); a
        crash at t=0.5 is noticed during the completion round, after the
        scatter proper — its 200 items are recorded as lost, not
        redistributed.
        """
        plat = make_platform()
        faults = FaultPlan().crash("h0", at=0.5)
        run, root = run_ft(plat, 1000, [200] * 5, faults=faults)
        outcome = run.results[root]
        assert outcome.dead == (0,)
        assert outcome.lost_items == 200
        delivered = [
            x for r, res in enumerate(run.results) if r != 0 for x in res.chunk
        ]
        assert len(delivered) == 800


class TestConsecutiveDeaths:
    """A survivor of the first re-plan dies *during redistribution* —
    previously only single-round kill sets were exercised."""

    COUNTS = [2000] * 5

    def _run(self, *crashes, seed=0):
        plat = make_platform()
        faults = FaultPlan(seed=seed)
        for host, at in crashes:
            faults = faults.crash(host, at=at)
        return run_ft(plat, 10_000, self.COUNTS, faults=faults, retries=2)

    def test_second_replan_after_survivor_dies_mid_redistribution(self):
        # h1 dies before its first-round chunk (replan #1 over {0, 2, 3});
        # h2 — which already holds its first-round chunk AND is owed a
        # redistribution share — dies at t=6.0, mid-redistribution, forcing
        # replan #2 over {0, 3}.
        run, root = self._run(("h1", 1.0), ("h2", 6.0))
        outcome = run.results[root]
        assert outcome.dead == (1, 2)
        assert outcome.survivors == (0, 3, 4)
        assert outcome.replans >= 2
        assert outcome.degraded

        # h2's reclaimed chunk is redistributed on top of h1's share.
        assert outcome.redistributed_items > self.COUNTS[1]

        # Item conservation: the root still holds the source data, so every
        # one of the 10k items lands on exactly one survivor.
        flat = [
            x
            for r, res in enumerate(run.results)
            if r not in (1, 2)
            for x in res.chunk
        ]
        assert sorted(flat) == list(range(10_000))

        # The root's final counts agree with what each survivor received.
        for r, res in enumerate(run.results):
            if r in (1, 2):
                assert isinstance(res, HostFailure)
                assert outcome.counts[r] == 0
            else:
                assert outcome.counts[r] == len(res.chunk)

    def test_three_consecutive_deaths_cascade_replans(self):
        run, root = self._run(("h1", 1.0), ("h2", 6.0), ("h3", 8.0))
        outcome = run.results[root]
        assert outcome.dead == (1, 2, 3)
        assert outcome.survivors == (0, 4)
        assert outcome.replans >= 3
        flat = [
            x
            for r, res in enumerate(run.results)
            if r not in (1, 2, 3)
            for x in res.chunk
        ]
        assert sorted(flat) == list(range(10_000))

    def test_death_after_redistribution_delivery_loses_chunk(self):
        # h2 dies just *after* its redistribution share arrives: the death
        # is only seen in the completion round, so its items (first-round
        # chunk + redistribution share) are lost, not redistributed again.
        run, root = self._run(("h1", 1.0), ("h2", 7.5))
        outcome = run.results[root]
        assert outcome.dead == (1, 2)
        assert outcome.replans == 1
        assert outcome.lost_items > self.COUNTS[2]
        delivered = [
            x
            for r, res in enumerate(run.results)
            if r not in (1, 2)
            for x in res.chunk
        ]
        assert len(delivered) == 10_000 - outcome.lost_items

    def test_consecutive_deaths_bit_identical_across_repeats(self):
        run_a, root = self._run(("h1", 1.0), ("h2", 6.0))
        run_b, _ = self._run(("h1", 1.0), ("h2", 6.0))
        assert run_a.duration == run_b.duration
        assert run_a.results[root].counts == run_b.results[root].counts
        assert run_a.results[root].replans == run_b.results[root].replans


class TestReplanOracles:
    """Every re-plan round is itself a paper-valid scatter plan.

    Each time ``ft_scatterv`` re-runs the planner on a survivor subset it
    solves a fresh :class:`ScatterProblem` over the reclaimed items.  The
    verification registry's universal oracles must hold for that inner
    plan exactly as for a top-level one: ``eq1-recompute`` (the claimed
    makespan survives an exact rational Eq. 1/2 re-evaluation of the
    counts) and ``dist-valid`` (the counts are a non-negative integer
    partition of the reclaimed item total).  The ``planner`` hook records
    every (problem, result) round so the oracles can replay them.
    """

    ORACLE_IDS = ("eq1-recompute", "dist-valid")

    @staticmethod
    def _recording_planner(rounds):
        def _plan(problem):
            result = plan_scatter(problem, algorithm="auto", order_policy=None)
            rounds.append((problem, result))
            return result

        return _plan

    def _assert_rounds_pass(self, rounds):
        for problem, result in rounds:
            reports = run_oracles(
                problem, {"auto": result}, only=self.ORACLE_IDS
            )
            assert [r.oracle_id for r in reports] == list(self.ORACLE_IDS)
            for report in reports:
                assert report.applicable
                assert report.ok, (
                    f"re-plan round over p={problem.p} n={problem.n} "
                    f"violates {report.oracle_id}: {report.violations}"
                )

    def test_consecutive_death_rounds_satisfy_oracles(self):
        # The TestConsecutiveDeaths cascade: h1 dies pre-delivery, h2 dies
        # mid-redistribution — at least two recorded re-plan rounds.
        plat = make_platform()
        faults = FaultPlan(seed=0).crash("h1", at=1.0).crash("h2", at=6.0)
        rounds = []
        run, root = run_ft(
            plat,
            10_000,
            [2000] * 5,
            faults=faults,
            retries=2,
            planner=self._recording_planner(rounds),
        )
        outcome = run.results[root]
        assert outcome.replans == len(rounds)
        assert len(rounds) >= 2
        self._assert_rounds_pass(rounds)
        # Each round plans exactly the items reclaimed for that round.
        assert sum(p.n for p, _ in rounds) == outcome.redistributed_items

    @given(
        st.integers(min_value=4, max_value=6),
        st.integers(min_value=200, max_value=2000),
        st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_kill_sets_satisfy_oracles(self, p, n, data):
        plat = make_platform(p=p)
        # Kill 1..p-2 of the non-root workers at drawn (possibly equal)
        # times within the scatter's active window; the root (rank p-1,
        # the data holder) always survives.
        victims = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=p - 2),
                unique=True,
                min_size=1,
                max_size=p - 2,
            )
        )
        faults = FaultPlan(seed=0)
        for v in victims:
            at = data.draw(st.integers(min_value=1, max_value=60)) / 10.0
            faults = faults.crash(f"h{v}", at=at)

        base = n // p
        counts = [base] * p
        counts[-1] += n - base * p
        rounds = []
        run, root = run_ft(
            plat,
            n,
            counts,
            faults=faults,
            retries=1,
            planner=self._recording_planner(rounds),
        )
        outcome = run.results[root]
        assert outcome.replans == len(rounds)
        self._assert_rounds_pass(rounds)

        # Conservation across the whole operation: every item is either
        # delivered to a survivor or recorded lost with its dead owner.
        delivered = sum(
            len(res.chunk)
            for res in run.results
            if not isinstance(res, HostFailure)
        )
        assert delivered + outcome.lost_items == n


class TestReplanBudget:
    """``max_replans`` / ``deadline`` bound the re-plan cascade."""

    COUNTS = [2000] * 5
    N = 10_000

    def _run(self, *crashes, **scatter_kwargs):
        plat = make_platform()
        faults = FaultPlan(seed=0)
        for host, at in crashes:
            faults = faults.crash(host, at=at)
        return run_ft(
            plat, self.N, self.COUNTS, faults=faults, retries=2, **scatter_kwargs
        )

    def _assert_conservation(self, run, outcome):
        delivered = sum(
            len(res.chunk)
            for res in run.results
            if not isinstance(res, HostFailure)
        )
        assert delivered + outcome.lost_items == self.N

    def test_max_replans_zero_degrades_instead_of_replanning(self):
        from repro.obs import METRICS

        metric = METRICS.counter("mpi.ft_scatterv.replan_budget_exhausted")
        before = metric.value
        run, root = self._run(("h1", 1.0), max_replans=0)
        outcome = run.results[root]
        assert outcome.dead == (1,)
        assert outcome.replans == 0
        assert outcome.redistributed_items == 0
        # h1's whole share went into lost_items instead of a re-plan.
        assert outcome.lost_items == self.COUNTS[1]
        assert outcome.degraded
        assert metric.value == before + 1
        self._assert_conservation(run, outcome)

    def test_max_replans_one_caps_a_cascade(self):
        run, root = self._run(("h1", 1.0), ("h2", 6.0), max_replans=1)
        outcome = run.results[root]
        assert outcome.dead == (1, 2)
        assert outcome.replans == 1  # second round hit the budget
        assert outcome.lost_items > 0
        self._assert_conservation(run, outcome)

    def test_generous_budget_changes_nothing(self):
        run_free, root = self._run(("h1", 1.0), ("h2", 6.0))
        run_capped, _ = self._run(
            ("h1", 1.0), ("h2", 6.0), max_replans=10, deadline=1e9
        )
        assert (
            run_free.results[root].counts == run_capped.results[root].counts
        )
        assert (
            run_free.results[root].replans == run_capped.results[root].replans
        )

    def test_deadline_expired_at_first_reclaim(self):
        run, root = self._run(("h1", 1.0), deadline=0.5)
        outcome = run.results[root]
        # The first reclaim happens after t=1.0 > deadline: no re-plan.
        assert outcome.replans == 0
        assert outcome.lost_items == self.COUNTS[1]
        self._assert_conservation(run, outcome)

    def test_budget_never_gates_root_absorption(self):
        # All workers dead: there is nobody to re-plan over, so the root
        # absorbs reclaimed items even with a zero budget.
        run, root = self._run(
            ("h0", 0.5), ("h1", 0.5), ("h2", 0.5), ("h3", 0.5), max_replans=0
        )
        outcome = run.results[root]
        assert outcome.survivors == (4,)
        assert outcome.lost_items == 0
        assert len(outcome.chunk) == self.N

    def test_negative_max_replans_rejected(self):
        with pytest.raises(MpiError, match="max_replans"):
            self._run(("h1", 1.0), max_replans=-1)


class TestReceiverPatience:
    """Property: ``patience = timeout * size`` bounds a worker's wait.

    Even when the *root* dies mid-stream, a worker blocked in
    ``ft_scatterv`` with a finite ``timeout`` must surface
    :class:`RecvTimeout` within ``size * timeout`` simulated seconds of
    the moment the root stopped sending — never hang.
    """

    @staticmethod
    def _program(ctx, data, counts, root, timeout):
        if ctx.rank == root:
            return (
                yield from ctx.ft_scatterv(
                    data, counts, root=root, timeout=timeout
                )
            )
        try:
            outcome = yield from ctx.ft_scatterv(
                None, None, root=root, timeout=timeout
            )
        except RecvTimeout as exc:
            return ("timeout", exc.time)
        return outcome

    @given(
        st.integers(min_value=3, max_value=6),
        st.integers(min_value=5, max_value=30),  # timeout in tenths
        st.integers(min_value=1, max_value=50),  # crash time in tenths
    )
    @settings(max_examples=15, deadline=None)
    def test_root_death_cannot_hang_workers(self, p, timeout_tenths, crash_tenths):
        timeout = timeout_tenths / 10.0
        crash_at = crash_tenths / 10.0
        plat = make_platform(p=p)
        hosts = plat.host_names
        root = p - 1
        faults = FaultPlan(seed=0).crash(hosts[root], at=crash_at)
        n = 100 * p
        counts = [100] * p
        run = run_spmd(
            plat,
            hosts,
            self._program,
            list(range(n)),
            counts,
            root,
            timeout,
            faults=faults,
        )
        # The root either died mid-stream or finished before the crash;
        # either way no worker may wait past the patience bound.
        patience = timeout * p
        # Slack for one in-flight delivery completing after the crash.
        bound = crash_at + patience + 1.0
        for r in range(p - 1):
            res = run.results[r]
            if isinstance(res, tuple) and res[0] == "timeout":
                assert res[1] <= bound, (r, res, bound)
            else:
                # Chunk + done arrived before the crash: a full outcome.
                assert isinstance(res, ScatterOutcome)


class TestTimeoutsAndRetries:
    def test_recv_timeout_raises(self):
        plat = make_platform(p=2)

        def program(ctx):
            if ctx.rank == 0:
                try:
                    yield from ctx.recv(1, timeout=3.0)
                except RecvTimeout as exc:
                    return ("timeout", exc.time)
            else:
                yield from ctx.compute(10_000)  # never sends
                return "done"

        run = run_spmd(plat, plat.host_names, program)
        assert run.results[0] == ("timeout", 3.0)

    def test_send_retries_ride_out_transient_outage(self):
        plat = make_platform(p=2)
        faults = FaultPlan(seed=3).link_outage("h0", "h1", start=0.0, end=0.5)

        def program(ctx):
            if ctx.rank == 0:
                retries = yield from ctx.send(
                    1, "payload", items=100, retries=5, backoff=0.3
                )
                return retries
            return (yield from ctx.recv(0))

        run = run_spmd(plat, plat.host_names, program, faults=faults)
        assert run.results[1] == "payload"
        assert run.results[0] >= 1  # at least one retry was needed

    def test_send_retries_exhausted_reraises(self):
        plat = make_platform(p=2)
        faults = FaultPlan().crash("h1", at=0.0)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, "x", items=100, retries=2, backoff=0.1)
            return "unreached"

        with pytest.raises(LinkFailure, match="dead"):
            run_spmd(plat, plat.host_names, program, faults=faults)


class TestRecvAnyFairness:
    def test_wildcard_messages_arrive_in_completion_order(self):
        plat = make_platform(p=4)

        def program(ctx):
            if ctx.rank == 3:
                seen = []
                for _ in range(3):
                    t = yield from ctx.recv_any(tag=5)
                    seen.append(t.payload)
                return seen
            # Stagger the sends so completion order is deterministic
            # (compute time grows with the rank's host alpha).
            yield from ctx.compute(100 * (ctx.rank + 1))
            yield from ctx.send(3, ctx.rank, items=10, tag=5, to_any=True)
            return None

        run = run_spmd(plat, plat.host_names, program)
        assert run.results[3] == [0, 1, 2]
