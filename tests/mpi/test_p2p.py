"""Tests for point-to-point messaging and the SPMD runtime."""

import pytest

from repro.core import LinearCost
from repro.mpi import MpiError, run_spmd, trace_labels
from repro.simgrid import DeadlockError, Host, Link, Platform


def make_platform(n=3, alpha=0.01, beta=0.001):
    plat = Platform("mpi-test")
    for i in range(n):
        plat.add_host(Host(f"h{i}", LinearCost(alpha)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(beta))
    return plat


class TestTraceLabels:
    def test_unique_hosts_keep_names(self):
        assert trace_labels(["a", "b", "c"]) == ["a", "b", "c"]

    def test_shared_host_gets_rank_suffix(self):
        assert trace_labels(["a", "b", "a"]) == ["a[0]", "b", "a[2]"]


class TestSendRecv:
    def test_payload_and_timing(self):
        plat = make_platform()

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, [1, 2, 3])
                return None
            elif ctx.rank == 1:
                data = yield from ctx.recv(0)
                return (data, ctx.now)
            return None

        run = run_spmd(plat, ["h0", "h1", "h2"], program)
        data, when = run.results[1]
        assert data == [1, 2, 3]
        assert when == pytest.approx(0.003)  # 3 items at 0.001 s/item

    def test_explicit_items(self):
        plat = make_platform()

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, object(), items=100)
            elif ctx.rank == 1:
                tr = yield from ctx.recv_transfer(0)
                return tr.items, ctx.now
            return None

        run = run_spmd(plat, ["h0", "h1", "h2"], program)
        items, when = run.results[1]
        assert items == 100
        assert when == pytest.approx(0.1)

    def test_unsized_payload_without_items(self):
        plat = make_platform()

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, object())
            elif ctx.rank == 1:
                yield from ctx.recv(0)
            return None

        with pytest.raises(MpiError, match="items"):
            run_spmd(plat, ["h0", "h1", "h2"], program)

    def test_tags_separate_messages(self):
        plat = make_platform()

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, ["tagged-5"], tag=5)
                yield from ctx.send(1, ["tagged-9"], tag=9)
            elif ctx.rank == 1:
                late = yield from ctx.recv(0, tag=9)
                early = yield from ctx.recv(0, tag=5)
                return early, late
            return None

        run = run_spmd(plat, ["h0", "h1", "h2"], program)
        assert run.results[1] == (["tagged-5"], ["tagged-9"])

    def test_self_send_free(self):
        plat = make_platform()

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(0, [1])
                msg = yield from ctx.recv(0)
                return msg, ctx.now
            return None
            yield  # pragma: no cover

        run = run_spmd(plat, ["h0", "h1", "h2"], program)
        # ranks 1, 2 return immediately; rank 0's self-send costs nothing.
        assert run.results[0] == ([1], 0.0)

    def test_bad_rank(self):
        plat = make_platform()

        def program(ctx):
            yield from ctx.send(99, [1])

        with pytest.raises(MpiError, match="out of range"):
            run_spmd(plat, ["h0", "h1", "h2"], program)

    def test_mismatched_recv_deadlocks(self):
        plat = make_platform()

        def program(ctx):
            if ctx.rank == 1:
                yield from ctx.recv(0)  # never sent
            return None
            yield  # pragma: no cover

        with pytest.raises(DeadlockError):
            run_spmd(plat, ["h0", "h1", "h2"], program)


class TestCompute:
    def test_charges_host_rate(self):
        plat = make_platform(alpha=0.5)

        def program(ctx):
            yield from ctx.compute(10)
            return ctx.now

        run = run_spmd(plat, ["h0", "h1"], program)
        assert run.results == [pytest.approx(5.0)] * 2
        assert run.duration == pytest.approx(5.0)


class TestRuntime:
    def test_unknown_host(self):
        plat = make_platform()

        def program(ctx):
            return None
            yield  # pragma: no cover

        with pytest.raises(MpiError, match="unknown host"):
            run_spmd(plat, ["h0", "nope"], program)

    def test_results_in_rank_order(self):
        plat = make_platform()

        def program(ctx):
            return ctx.rank * 10
            yield  # pragma: no cover

        run = run_spmd(plat, ["h0", "h1", "h2"], program)
        assert run.results == [0, 10, 20]

    def test_extra_args_passed(self):
        plat = make_platform()

        def program(ctx, base, scale):
            return base + scale * ctx.rank
            yield  # pragma: no cover

        run = run_spmd(plat, ["h0", "h1"], program, 100, 5)
        assert run.results == [100, 105]

    def test_rank_context_properties(self):
        plat = make_platform()

        def program(ctx):
            return (ctx.size, ctx.host.name, ctx.name)
            yield  # pragma: no cover

        run = run_spmd(plat, ["h2", "h0"], program)
        assert run.results[0] == (2, "h2", "h2")
        assert run.results[1] == (2, "h0", "h0")
