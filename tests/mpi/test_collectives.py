"""Tests for scatter/scatterv/gatherv/bcast/barrier."""

import pytest

from repro.core import LinearCost
from repro.mpi import MpiError, run_spmd
from repro.simgrid import Host, Link, Platform


def make_platform(n=4, alpha=0.01, betas=None):
    plat = Platform("coll-test")
    for i in range(n):
        plat.add_host(Host(f"h{i}", LinearCost(alpha)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            beta = betas.get((u, v), 0.001) if betas else 0.001
            plat.connect(u, v, Link.linear(beta))
    return plat


HOSTS = ["h0", "h1", "h2", "h3"]


class TestScatterv:
    def test_chunks_delivered(self):
        plat = make_platform()
        data = list(range(10))
        counts = [1, 2, 3, 4]

        def program(ctx):
            chunk = yield from ctx.scatterv(
                data if ctx.rank == 3 else None,
                counts if ctx.rank == 3 else None,
                root=3,
            )
            return list(chunk)

        run = run_spmd(plat, HOSTS, program)
        assert run.results == [[0], [1, 2], [3, 4, 5], [6, 7, 8, 9]]

    def test_root_serves_in_rank_order(self):
        """The stair: rank 0 finishes receiving before rank 1, etc."""
        plat = make_platform()
        data = list(range(300))
        counts = [100, 100, 100, 0]

        def program(ctx):
            chunk = yield from ctx.scatterv(
                data if ctx.rank == 3 else None,
                counts if ctx.rank == 3 else None,
                root=3,
            )
            return (len(chunk), ctx.now)

        run = run_spmd(plat, HOSTS, program)
        times = [t for _, t in run.results[:3]]
        assert times == pytest.approx([0.1, 0.2, 0.3])

    def test_zero_count_rank(self):
        plat = make_platform()
        data = list(range(5))
        counts = [0, 5, 0, 0]

        def program(ctx):
            chunk = yield from ctx.scatterv(
                data if ctx.rank == 3 else None,
                counts if ctx.rank == 3 else None,
                root=3,
            )
            return len(chunk)

        run = run_spmd(plat, HOSTS, program)
        assert run.results == [0, 5, 0, 0]

    def test_counts_validation(self):
        plat = make_platform()

        def bad_counts(counts):
            def program(ctx):
                yield from ctx.scatterv(
                    list(range(10)) if ctx.rank == 3 else None,
                    counts if ctx.rank == 3 else None,
                    root=3,
                )

            return program

        with pytest.raises(MpiError, match="entries"):
            run_spmd(plat, HOSTS, bad_counts([1, 2]))
        with pytest.raises(MpiError, match="negative"):
            run_spmd(plat, HOSTS, bad_counts([-1, 5, 3, 3]))
        with pytest.raises(MpiError, match="only"):
            run_spmd(plat, HOSTS, bad_counts([10, 10, 10, 10]))

    def test_root_must_provide_data(self):
        plat = make_platform()

        def program(ctx):
            yield from ctx.scatterv(None, None, root=3)

        with pytest.raises(MpiError, match="root must provide"):
            run_spmd(plat, HOSTS, program)


class TestScatter:
    def test_uniform_split_with_remainder(self):
        plat = make_platform()
        data = list(range(10))  # 10 over 4 ranks -> 3,3,2,2

        def program(ctx):
            chunk = yield from ctx.scatter(data if ctx.rank == 0 else None, root=0)
            return len(chunk)

        run = run_spmd(plat, HOSTS, program)
        assert run.results == [3, 3, 2, 2]

    def test_all_data_delivered_once(self):
        plat = make_platform()
        data = list(range(12))

        def program(ctx):
            chunk = yield from ctx.scatter(data if ctx.rank == 2 else None, root=2)
            return list(chunk)

        run = run_spmd(plat, HOSTS, program)
        flat = [x for chunk in run.results for x in chunk]
        assert sorted(flat) == data


class TestGatherv:
    def test_root_collects_in_rank_order(self):
        plat = make_platform()

        def program(ctx):
            out = yield from ctx.gatherv([ctx.rank] * (ctx.rank + 1), root=0)
            return out

        run = run_spmd(plat, HOSTS, program)
        assert run.results[0] == [[0], [1, 1], [2, 2, 2], [3, 3, 3, 3]]
        assert run.results[1] is None

    def test_gather_timing_serializes_on_root_inport(self):
        plat = make_platform()

        def program(ctx):
            yield from ctx.gatherv([0] * 100, root=0, items=100)
            return ctx.now

        run = run_spmd(plat, HOSTS, program)
        # Three senders, 0.1 s each, serialized into root's single port.
        assert run.duration == pytest.approx(0.3)


class TestBcast:
    @pytest.mark.parametrize("algorithm", ["flat", "binomial"])
    def test_payload_reaches_everyone(self, algorithm):
        plat = make_platform(n=6)

        def program(ctx):
            msg = yield from ctx.bcast(
                "hello" if ctx.rank == 2 else None, root=2, items=10,
                algorithm=algorithm,
            )
            return msg

        hosts = [f"h{i}" for i in range(6)]
        run = run_spmd(plat, hosts, program)
        assert run.results == ["hello"] * 6

    def test_binomial_faster_than_flat_on_uniform_links(self):
        plat = make_platform(n=8)
        hosts = [f"h{i}" for i in range(8)]

        def program(algorithm):
            def body(ctx):
                yield from ctx.bcast(
                    "x" if ctx.rank == 0 else None, root=0, items=1000,
                    algorithm=algorithm,
                )
                return ctx.now

            return body

        flat = run_spmd(plat, hosts, program("flat")).duration
        binomial = run_spmd(plat, hosts, program("binomial")).duration
        # Flat: 7 sequential sends = 7s.  Binomial: log2(8) = 3 rounds = 3s.
        assert flat == pytest.approx(7.0)
        assert binomial == pytest.approx(3.0)

    def test_unknown_algorithm(self):
        plat = make_platform()

        def program(ctx):
            yield from ctx.bcast("x", root=0, items=1, algorithm="quantum")

        with pytest.raises(MpiError, match="unknown bcast"):
            run_spmd(plat, HOSTS, program)

    def test_nonzero_root_binomial(self):
        plat = make_platform(n=5)

        def program(ctx):
            msg = yield from ctx.bcast(
                ctx.rank if ctx.rank == 3 else None, root=3, items=1
            )
            return msg

        hosts = [f"h{i}" for i in range(5)]
        run = run_spmd(plat, hosts, program)
        assert run.results == [3] * 5


class TestBarrier:
    def test_ranks_synchronize(self):
        plat = make_platform()

        def program(ctx):
            # Rank k computes k*0.1s of work, then barriers.
            yield from ctx.compute(10 * ctx.rank)
            yield from ctx.barrier()
            return ctx.now

        run = run_spmd(plat, HOSTS, program)
        # Everyone leaves the barrier at (or after) the slowest arrival.
        slowest_work = 0.01 * 10 * 3
        assert all(t >= slowest_work - 1e-12 for t in run.results)
        assert max(run.results) - min(run.results) < 1e-9
