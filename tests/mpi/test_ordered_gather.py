"""Tests for the token-enforced ordered gather collective."""

import pytest

from repro.core import (
    LinearCost,
    fifo_order,
    gather_finish_times,
    gather_makespan,
    solve_gather,
)
from repro.mpi import MpiError, run_spmd
from repro.simgrid import Host, Link, Platform


def make_platform(alphas, beta=1e-3):
    plat = Platform("og-test")
    for i, a in enumerate(alphas):
        plat.add_host(Host(f"h{i}", LinearCost(a)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(beta))
    return plat


def gather_program(counts, order, root):
    def program(ctx):
        yield from ctx.compute(counts[ctx.rank])
        out = yield from ctx.gatherv_ordered(
            ("results", ctx.rank), root, order, items=counts[ctx.rank]
        )
        return out if ctx.rank == root else ctx.now

    return program


class TestGathervOrdered:
    def test_payloads_collected(self):
        plat = make_platform([0.01, 0.01, 0.01])
        run = run_spmd(
            plat, plat.host_names, gather_program([5, 5, 5], [1, 0], root=2)
        )
        assert run.results[2] == [("results", 0), ("results", 1), ("results", 2)]

    def test_simulation_matches_analytic_model(self):
        """The simulated ordered gather lands on gather_finish_times."""
        from repro.core import Processor, ScatterProblem

        alphas = [0.004, 0.016, 0.009]
        plat = make_platform(alphas)
        counts = [40, 25, 35]
        order = [1, 0]
        run = run_spmd(
            plat, plat.host_names, gather_program(counts, order, root=2)
        )
        prob = ScatterProblem(
            [
                Processor.linear("h0", alphas[0], 1e-3),
                Processor.linear("h1", alphas[1], 1e-3),
                Processor.linear("root", alphas[2], 0.0),
            ],
            100,
        )
        model = gather_finish_times(prob, counts, order)
        # Non-root ranks return their send-completion time.
        assert run.results[0] == pytest.approx(model[0], rel=1e-9)
        assert run.results[1] == pytest.approx(model[1], rel=1e-9)
        assert run.duration == pytest.approx(max(model), rel=1e-9)

    def test_order_enforced_against_readiness(self):
        """Even when rank 1 is ready first, order [0, 1] serves rank 0."""
        plat = make_platform([0.1, 0.001, 0.001])  # rank 0 slow to compute
        counts = [50, 50, 0]
        run = run_spmd(
            plat, plat.host_names, gather_program(counts, [0, 1], root=2)
        )
        # Rank 1's transfer must start after rank 0's completes.
        tl0 = run.recorder.timeline("h0")
        tl1 = run.recorder.timeline("h1")
        send0 = [iv for iv in tl0.intervals if iv.state == "sending"][0]
        send1 = [iv for iv in tl1.intervals if iv.state == "sending"][0]
        assert send1.start >= send0.end - 1e-12

    def test_bad_order_rejected(self):
        plat = make_platform([0.01, 0.01, 0.01])
        with pytest.raises(MpiError, match="permute"):
            run_spmd(
                plat, plat.host_names, gather_program([1, 1, 1], [0, 0], root=2)
            )

    def test_planned_gather_end_to_end(self):
        """solve_gather's plan executed on the simulator hits its predicted
        makespan."""
        from repro.workloads import table1_platform, table1_rank_hosts

        platform = table1_platform()
        hosts = table1_rank_hosts()
        n = 20_000
        prob = platform.to_problem(n, hosts[-1], order=hosts[:-1])
        plan = solve_gather(prob, order_policy=None)

        counts = list(plan.counts)
        order = list(plan.order)

        def program(ctx):
            yield from ctx.compute(counts[ctx.rank])
            yield from ctx.gatherv_ordered(
                None, ctx.size - 1, order, items=counts[ctx.rank]
            )
            return ctx.now

        run = run_spmd(platform, hosts, program)
        assert run.duration == pytest.approx(plan.makespan, rel=1e-9)

    def test_fifo_vs_planned_order(self):
        """The planned (reversed-scatter) order is never worse than FIFO
        for the planned counts."""
        from repro.core import Processor, ScatterProblem

        prob = ScatterProblem(
            [
                Processor.linear("a", 0.01, 5e-3),
                Processor.linear("b", 0.02, 1e-3),
                Processor.linear("c", 0.005, 2e-3),
                Processor.linear("root", 0.01, 0.0),
            ],
            200,
        )
        plan = solve_gather(prob)
        fifo = gather_makespan(
            plan.problem, plan.counts, fifo_order(plan.problem, plan.counts)
        )
        assert plan.makespan <= fifo + 1e-12
