"""Wire-protocol tests for the tree scatter (``repro.mpi.scatterv_tree``)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinearCost
from repro.core.trees import (
    TREE_CONSTRUCTIONS,
    ScatterTree,
    binomial_tree,
    flat_tree,
)
from repro.mpi import MpiError, run_spmd
from repro.obs.events import EventLog
from repro.mpi.collectives import tree_for_comm
from repro.simgrid import Host, Link, Platform


def make_platform(p=8, alpha=0.01, beta=0.001):
    plat = Platform("tree-coll")
    for i in range(p):
        plat.add_host(Host(f"h{i}", LinearCost(alpha * (1 + 0.1 * i))))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(beta))
    return plat


def expected_chunks(data, counts):
    out, off = [], 0
    for c in counts:
        out.append(list(data[off : off + c]))
        off += c
    return out


def scatter_program(ctx, data, counts, root, kwargs):
    chunk = yield from ctx.scatterv_tree(
        data if ctx.rank == root else None, counts, root=root, **kwargs
    )
    return list(chunk)


def run_tree_scatter(plat, data, counts, root, **kwargs):
    return run_spmd(
        plat, plat.host_names, scatter_program, data, counts, root, kwargs
    )


class TestDelivery:
    COUNTS = [5, 0, 7, 3, 11, 2, 9, 3]

    def test_matches_scatterv_layout_for_every_construction(self):
        plat = make_platform()
        data = list(range(sum(self.COUNTS)))
        want = expected_chunks(data, self.COUNTS)
        for construction in TREE_CONSTRUCTIONS:
            run = run_tree_scatter(
                plat, data, self.COUNTS, 7, construction=construction
            )
            assert run.results == want, construction

    def test_matches_scatterv_with_non_last_root(self):
        plat = make_platform()
        data = list(range(sum(self.COUNTS)))
        want = expected_chunks(data, self.COUNTS)
        for root in (0, 3):
            run = run_tree_scatter(plat, data, self.COUNTS, root)
            assert run.results == want, root

    def test_explicit_tree_honoured(self):
        plat = make_platform(p=4)
        counts = [2, 3, 4, 1]
        data = list(range(10))
        # A hand-rolled chain 3 -> 2 -> 1 -> 0: every edge relays.
        chain = ScatterTree(
            parent=(1, 2, 3, -1), children=((), (0,), (1,), (2,))
        )
        run = run_tree_scatter(plat, data, counts, 3, tree=chain)
        assert run.results == expected_chunks(data, counts)

    def test_interior_nodes_actually_relay(self):
        plat = make_platform(p=8)
        counts = [10] * 8
        data = list(range(80))
        log = EventLog()
        tree = binomial_tree(8)
        run = run_spmd(
            plat,
            plat.host_names,
            scatter_program,
            data,
            counts,
            7,
            {"tree": tree},
            observers=[log],
        )
        assert run.results == expected_chunks(data, counts)
        senders = {e.actor for e in log.events if e.type == "send.begin"}
        # Binomial interior ranks (3, 5, 6 for p=8 root=7) forward blocks.
        assert len(senders) > 1

    def test_zero_count_ranks_get_empty_chunks(self):
        plat = make_platform(p=4)
        counts = [0, 6, 0, 0]
        run = run_tree_scatter(plat, list(range(6)), counts, 3)
        assert run.results == [[], [0, 1, 2, 3, 4, 5], [], []]

    def test_n_zero(self):
        plat = make_platform(p=4)
        run = run_tree_scatter(plat, [], [0, 0, 0, 0], 3)
        assert run.results == [[], [], [], []]

    def test_derived_tree_matches_tree_for_comm(self):
        """tree=None derivation equals the explicit tree on every rank."""
        plat = make_platform()
        counts = self.COUNTS

        def program(ctx):
            tree = tree_for_comm(ctx, counts, 7, construction="practical")
            chunk = yield from ctx.scatterv_tree(
                list(range(sum(counts))) if ctx.rank == 7 else None,
                counts,
                root=7,
            )
            return (tree, list(chunk))

        run = run_spmd(plat, plat.host_names, program)
        trees = [t for t, _ in run.results]
        assert all(t == trees[0] for t in trees)
        chunks = [c for _, c in run.results]
        assert chunks == expected_chunks(list(range(sum(counts))), counts)


class TestValidation:
    def _expect(self, match, counts, root=3, data=None, **kwargs):
        plat = make_platform(p=4)
        if data is None:
            data = list(range(sum(counts))) if counts else []

        def program(ctx):
            chunk = yield from ctx.scatterv_tree(
                data if ctx.rank == root else None, counts, root=root, **kwargs
            )
            return list(chunk)

        with pytest.raises(MpiError, match=match):
            run_spmd(plat, plat.host_names, program)

    def test_counts_required_everywhere(self):
        self._expect("needs counts at every rank", None)

    def test_counts_length(self):
        self._expect("3 entries for 4 ranks", [1, 2, 3])

    def test_negative_counts(self):
        self._expect("negative counts", [1, -1, 2, 2])

    def test_tree_size_mismatch(self):
        self._expect(
            "spans 3 positions for 4 ranks", [1, 1, 1, 1], tree=flat_tree(3)
        )

    def test_tree_root_mismatch(self):
        # flat_tree(4) is rooted at 3; scatter rooted at 0 must refuse.
        self._expect("rooted at 3", [1, 1, 1, 1], root=0, tree=flat_tree(4))

    def test_root_must_provide_data(self):
        plat = make_platform(p=4)

        def program(ctx):
            chunk = yield from ctx.scatterv_tree(None, [1, 1, 1, 1], root=3)
            return list(chunk)

        with pytest.raises(MpiError, match="root must provide data"):
            run_spmd(plat, plat.host_names, program)

    def test_data_shorter_than_counts(self):
        self._expect(
            "counts sum to 8 but data has only 4",
            [2, 2, 2, 2],
            data=list(range(4)),
        )

    def test_unknown_construction_surfaces(self):
        plat = make_platform(p=4)

        def program(ctx):
            chunk = yield from ctx.scatterv_tree(
                list(range(4)) if ctx.rank == 3 else None,
                [1, 1, 1, 1],
                root=3,
                construction="fibonacci",
            )
            return list(chunk)

        with pytest.raises(ValueError, match="unknown tree construction"):
            run_spmd(plat, plat.host_names, program)


class TestProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=8),
        st.sampled_from(TREE_CONSTRUCTIONS),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_partitions_the_data(self, p, raw_counts, construction, data):
        counts = (raw_counts * p)[:p]
        root = data.draw(st.integers(min_value=0, max_value=p - 1))
        plat = make_platform(p=p)
        payload = list(range(sum(counts)))
        run = run_tree_scatter(
            plat, payload, counts, root, construction=construction
        )
        assert run.results == expected_chunks(payload, counts)
