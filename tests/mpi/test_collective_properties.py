"""Property-based tests for the collectives (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinearCost
from repro.mpi import run_spmd
from repro.simgrid import Host, Link, Platform


def uniform_platform(p):
    plat = Platform("hyp-coll")
    for i in range(p):
        plat.add_host(Host(f"h{i}", LinearCost(0.001)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(1e-4))
    return plat


@st.composite
def world(draw, max_p=8):
    p = draw(st.integers(min_value=2, max_value=max_p))
    root = draw(st.integers(min_value=0, max_value=p - 1))
    return p, root


@given(world(), st.integers(min_value=0, max_value=100))
@settings(max_examples=40, deadline=None)
def test_scatter_gather_roundtrip(w, n):
    """scatterv(uniform) then gatherv reassembles the data exactly."""
    p, root = w
    plat = uniform_platform(p)
    data = list(range(n))

    def program(ctx):
        chunk = yield from ctx.scatter(data if ctx.rank == root else None, root)
        gathered = yield from ctx.gatherv(list(chunk), root)
        return gathered

    run = run_spmd(plat, plat.host_names, program)
    reassembled = [x for part in run.results[root] for x in part]
    assert reassembled == data


@given(world(), st.sampled_from(["flat", "binomial"]))
@settings(max_examples=40, deadline=None)
def test_bcast_reaches_all(w, algorithm):
    p, root = w
    plat = uniform_platform(p)

    def program(ctx):
        msg = yield from ctx.bcast(
            ("payload", root) if ctx.rank == root else None,
            root,
            items=7,
            algorithm=algorithm,
        )
        return msg

    run = run_spmd(plat, plat.host_names, program)
    assert run.results == [("payload", root)] * p


@given(world())
@settings(max_examples=30, deadline=None)
def test_bcast_binomial_never_slower_than_flat(w):
    """On uniform links the binomial tree is at most as slow as flat."""
    p, root = w
    plat = uniform_platform(p)

    def program(algorithm):
        def body(ctx):
            yield from ctx.bcast(
                "x" if ctx.rank == root else None, root, items=500,
                algorithm=algorithm,
            )
            return ctx.now

        return body

    flat = run_spmd(plat, plat.host_names, program("flat")).duration
    binomial = run_spmd(plat, plat.host_names, program("binomial")).duration
    assert binomial <= flat + 1e-12


@given(world(), st.integers(min_value=0, max_value=60))
@settings(max_examples=30, deadline=None)
def test_scatterv_random_counts_deliver_correct_slices(w, n):
    import random as _random

    p, root = w
    plat = uniform_platform(p)
    rng = _random.Random(n * 31 + p)
    counts = [0] * p
    for _ in range(n):
        counts[rng.randrange(p)] += 1
    data = list(range(n))

    def program(ctx):
        chunk = yield from ctx.scatterv(
            data if ctx.rank == root else None,
            counts if ctx.rank == root else None,
            root,
        )
        return list(chunk)

    run = run_spmd(plat, plat.host_names, program)
    # Slices are contiguous in rank order and cover the data.
    flat = [x for part in run.results for x in part]
    assert flat == data
    assert [len(part) for part in run.results] == counts


@given(world())
@settings(max_examples=20, deadline=None)
def test_barrier_synchronizes_all(w):
    p, root = w
    plat = uniform_platform(p)

    def program(ctx):
        yield from ctx.compute(ctx.rank * 10)
        yield from ctx.barrier()
        return ctx.now

    run = run_spmd(plat, plat.host_names, program)
    assert max(run.results) - min(run.results) < 1e-9
