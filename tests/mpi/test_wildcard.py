"""Tests for the ANY_SOURCE wildcard channel."""

import pytest

from repro.core import LinearCost
from repro.mpi import run_spmd
from repro.mpi.communicator import ANY_SOURCE
from repro.simgrid import DeadlockError, Host, Link, Platform


def make_platform(n=4):
    plat = Platform("wc-test")
    for i in range(n):
        plat.add_host(Host(f"h{i}", LinearCost(0.01)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(0.001))
    return plat


class TestWildcardChannel:
    def test_receives_from_multiple_senders(self):
        plat = make_platform()

        def program(ctx):
            if ctx.rank == 0:
                seen = []
                for _ in range(3):
                    tr = yield from ctx.recv_any(tag=7)
                    seen.append(tr.payload)
                return sorted(seen)
            yield from ctx.send(0, ctx.rank, items=1, tag=7, to_any=True)
            return None

        run = run_spmd(plat, [f"h{i}" for i in range(4)], program)
        assert run.results[0] == [1, 2, 3]

    def test_transfer_carries_source_host(self):
        plat = make_platform(2)

        def program(ctx):
            if ctx.rank == 0:
                tr = yield from ctx.recv_any(tag=9)
                return tr.src
            yield from ctx.send(0, "hi", items=1, tag=9, to_any=True)
            return None

        run = run_spmd(plat, ["h0", "h1"], program)
        assert run.results[0] == "h1"

    def test_plain_send_does_not_match_recv_any(self):
        plat = make_platform(2)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.recv_any(tag=5)  # never satisfied
            else:
                yield from ctx.send(0, "x", items=1, tag=5)  # exact channel
            return None

        with pytest.raises(DeadlockError):
            run_spmd(plat, ["h0", "h1"], program)

    def test_wildcard_send_does_not_match_exact_recv(self):
        plat = make_platform(2)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.recv(1, tag=5)  # exact channel
            else:
                yield from ctx.send(0, "x", items=1, tag=5, to_any=True)
            return None

        with pytest.raises(DeadlockError):
            run_spmd(plat, ["h0", "h1"], program)

    def test_any_source_constant(self):
        assert ANY_SOURCE == -1
