"""Fault tolerance for tree-planned scatters (ISSUE tree-death test).

``scatterv_tree`` relays every interior node's subtree payload through
that node, so an interior death strands the whole subtree — the plain
collective deadlocks loudly.  The fault-tolerant path instead runs
``ft_scatterv`` over the *tree planner's* counts with a tree-topology
``IncrementalPlanner`` as the re-plan hook: survivors are re-planned as
fresh tree problems, items are conserved, and every inner round passes
the ``eq1-recompute`` / ``dist-valid`` oracles (the tree-aware Eq. 1
re-derivation included).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AffineCost, LinearCost, plan_scatter
from repro.core.incremental import IncrementalPlanner
from repro.core.trees import tree_send_events
from repro.mpi import ScatterOutcome, run_spmd
from repro.simgrid import FaultPlan, Host, HostFailure, Link, Platform
from repro.simgrid.engine import DeadlockError
from repro.verify import run_oracles

N = 800
ROOT = 7


def tree_platform(p=8, alpha=0.1, beta=1e-3, lat=1.0):
    """Uniform compute + per-message latency: the tree planner goes deep."""
    plat = Platform("ft-tree")
    for i in range(p):
        plat.add_host(Host(f"h{i}", LinearCost(alpha)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link(AffineCost(beta, lat)))
    return plat


def tree_plan(plat, n=N):
    problem = plat.to_problem(n, plat.host_names[-1], order=None)
    return problem, plan_scatter(problem, topology="tree", order_policy=None)


def interior_positions(tree):
    return [v for v in range(tree.p) if tree.children[v] and v != tree.root]


def recording_tree_planner(rounds):
    inner = IncrementalPlanner(topology="tree")

    def _plan(problem):
        result = inner(problem)
        rounds.append((problem, result))
        return result

    return _plan


def ft_program(ctx, data, counts, root, scatter_kwargs):
    outcome = yield from ctx.ft_scatterv(
        data if ctx.rank == root else None,
        counts if ctx.rank == root else None,
        root=root,
        **scatter_kwargs,
    )
    return outcome


def run_ft_tree(plat, counts, faults, *, n=N, **scatter_kwargs):
    scatter_kwargs.setdefault("retries", 2)
    return run_spmd(
        plat,
        plat.host_names,
        ft_program,
        list(range(n)),
        list(counts),
        ROOT,
        scatter_kwargs,
        faults=faults,
    )


class TestTreeShape:
    def test_planner_relays_through_interior_nodes(self):
        plat = tree_platform()
        problem, result = tree_plan(plat)
        tree = result.info["tree"]
        assert result.info["depth"] > 1
        assert interior_positions(tree), "expected a relaying tree, got flat"
        # Positions map 1:1 onto ranks (order=None keeps insertion order).
        assert [p.name for p in problem.processors] == plat.host_names


class TestInteriorDeath:
    def _fault(self, victim="h3", at=2.0):
        # t=2.0: the victim holds its subtree payload and is mid-forward.
        return FaultPlan(seed=0).crash(victim, at=at)

    def test_plain_tree_scatter_strands_the_subtree(self):
        plat = tree_platform()
        problem, result = tree_plan(plat)
        tree = result.info["tree"]
        # A relay that already holds its subtree payload at t=2.0: its
        # death leaves the descendants blocked on forwards that never come.
        events = tree_send_events(problem, tree, result.counts)
        recv_end = {e.dst: e.end for e in events}
        victim = next(
            v for v in interior_positions(tree) if recv_end[v] < 2.0
        )

        def program(ctx, data, counts, root, tree):
            chunk = yield from ctx.scatterv_tree(
                data if ctx.rank == root else None, counts, root=root, tree=tree
            )
            return list(chunk)

        # The victim's descendants wait on a relay that never comes: the
        # simulator detects the stranded subtree as a deadlock.
        with pytest.raises(DeadlockError, match="blocked processes"):
            run_spmd(
                plat,
                plat.host_names,
                program,
                list(range(N)),
                list(result.counts),
                ROOT,
                tree,
                faults=self._fault(plat.host_names[victim]),
            )

    def test_interior_death_conserves_items(self):
        plat = tree_platform()
        problem, result = tree_plan(plat)
        victim = interior_positions(result.info["tree"])[-1]
        run = run_ft_tree(
            plat, result.counts, self._fault(plat.host_names[victim])
        )
        outcome = run.results[ROOT]
        assert isinstance(outcome, ScatterOutcome)
        assert outcome.dead == (victim,)
        assert isinstance(run.results[victim], HostFailure)
        assert outcome.replans >= 1
        assert outcome.redistributed_items > 0

        # Conservation: every reclaimable item lands on exactly one
        # survivor; anything else is accounted as lost with its owner.
        delivered = [
            x
            for r, res in enumerate(run.results)
            if r != victim
            for x in res.chunk
        ]
        assert len(delivered) + outcome.lost_items == N
        assert len(set(delivered)) == len(delivered)
        for r, res in enumerate(run.results):
            if r != victim:
                assert outcome.counts[r] == len(res.chunk)

    def test_replan_rounds_pass_tree_oracles(self):
        plat = tree_platform()
        problem, result = tree_plan(plat)
        victim = interior_positions(result.info["tree"])[-1]
        rounds = []
        run = run_ft_tree(
            plat,
            result.counts,
            self._fault(plat.host_names[victim]),
            planner=recording_tree_planner(rounds),
        )
        outcome = run.results[ROOT]
        assert outcome.replans == len(rounds) >= 1
        for inner_problem, inner_result in rounds:
            # The re-plan is itself a tree plan over the survivor subset.
            assert inner_result.algorithm.startswith("tree-")
            assert "tree" in inner_result.info
            reports = run_oracles(
                inner_problem,
                {inner_result.algorithm: inner_result},
                only=["eq1-recompute", "dist-valid", "tree-lower-bound"],
            )
            for report in reports:
                assert report.applicable
                assert report.ok, (report.oracle_id, report.violations)
        assert sum(p.n for p, _ in rounds) == outcome.redistributed_items

    def test_bit_identical_across_repeats(self):
        plat = tree_platform()
        _, result = tree_plan(plat)
        victim = interior_positions(result.info["tree"])[-1]
        fault = self._fault(plat.host_names[victim])
        run_a = run_ft_tree(plat, result.counts, fault)
        run_b = run_ft_tree(plat, result.counts, fault)
        assert run_a.duration == run_b.duration
        assert run_a.results[ROOT].counts == run_b.results[ROOT].counts
        assert run_a.results[ROOT].replans == run_b.results[ROOT].replans


class TestRandomInteriorDeaths:
    @given(
        st.integers(min_value=0, max_value=10),  # interior pick (mod len)
        st.integers(min_value=5, max_value=60),  # crash time in tenths
    )
    @settings(max_examples=15, deadline=None)
    def test_any_interior_death_conserves_and_verifies(self, pick, tenths):
        plat = tree_platform()
        problem, result = tree_plan(plat)
        interiors = interior_positions(result.info["tree"])
        victim = interiors[pick % len(interiors)]
        rounds = []
        run = run_ft_tree(
            plat,
            result.counts,
            FaultPlan(seed=0).crash(plat.host_names[victim], at=tenths / 10.0),
            planner=recording_tree_planner(rounds),
        )
        outcome = run.results[ROOT]
        assert outcome.dead == (victim,)
        delivered = sum(
            len(res.chunk)
            for res in run.results
            if not isinstance(res, HostFailure)
        )
        assert delivered + outcome.lost_items == N
        for inner_problem, inner_result in rounds:
            reports = run_oracles(
                inner_problem,
                {inner_result.algorithm: inner_result},
                only=["eq1-recompute", "dist-valid"],
            )
            for report in reports:
                assert report.ok, (report.oracle_id, report.violations)
