"""Tests for the synthetic workload generators."""

import random

import pytest

from repro.workloads import (
    random_affine_problem,
    random_linear_problem,
    random_star_platform,
    random_tabulated_problem,
)


class TestRandomLinear:
    def test_shape(self, rng):
        prob = random_linear_problem(rng, 5, 100)
        assert prob.p == 5 and prob.n == 100
        assert prob.is_linear

    def test_root_beta_zero_default(self, rng):
        prob = random_linear_problem(rng, 4, 10)
        assert prob.root.beta == 0

    def test_root_beta_nonzero_option(self, rng):
        prob = random_linear_problem(rng, 4, 10, root_beta_zero=False)
        assert prob.root.beta > 0

    def test_rates_within_ranges(self, rng):
        prob = random_linear_problem(
            rng, 6, 10, alpha_range=(0.5, 1.0), beta_range=(0.1, 0.2)
        )
        for proc in prob.processors[:-1]:
            assert 0.5 <= float(proc.alpha) <= 1.0
            assert 0.1 <= float(proc.beta) <= 0.2

    def test_deterministic_for_seed(self):
        a = random_linear_problem(random.Random(5), 4, 10)
        b = random_linear_problem(random.Random(5), 4, 10)
        assert [p.alpha for p in a.processors] == [p.alpha for p in b.processors]

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            random_linear_problem(rng, 0, 10)


class TestRandomAffine:
    def test_affine_flags(self, rng):
        prob = random_affine_problem(rng, 4, 50)
        assert prob.is_affine
        assert prob.is_increasing

    def test_intercept_bounds(self, rng):
        prob = random_affine_problem(
            rng, 5, 10, comp_intercept_max=0.3, comm_intercept_max=0.1
        )
        for proc in prob.processors:
            assert 0 <= float(proc.comp.intercept) <= 0.3
            assert 0 <= float(proc.comm.intercept) <= 0.1


class TestRandomTabulated:
    def test_monotone(self, rng):
        prob = random_tabulated_problem(rng, 3, 30, monotone=True)
        assert prob.is_increasing
        prob.check_valid()

    def test_non_monotone_possible(self):
        rng = random.Random(1)
        found_dip = False
        for _ in range(10):
            prob = random_tabulated_problem(rng, 3, 50, monotone=False)
            if not prob.is_increasing:
                found_dip = True
                break
        assert found_dip

    def test_refuses_large_n(self, rng):
        with pytest.raises(ValueError, match="small n"):
            random_tabulated_problem(rng, 3, 100_000)

    def test_tables_cover_n(self, rng):
        prob = random_tabulated_problem(rng, 3, 25)
        for proc in prob.processors:
            proc.comp.exact(25)  # no IndexError


class TestRandomStarPlatform:
    def test_full_mesh(self, rng):
        plat = random_star_platform(rng, 5)
        names = plat.host_names
        assert len(names) == 5
        for u in names:
            for v in names:
                plat.link(u, v)  # resolvable everywhere

    def test_bottleneck_model_symmetric(self, rng):
        plat = random_star_platform(rng, 4)
        names = plat.host_names
        assert plat.link(names[0], names[1]).beta == plat.link(names[1], names[0]).beta

    def test_invalid_size(self, rng):
        with pytest.raises(ValueError):
            random_star_platform(rng, 0)

    def test_usable_with_solver(self, rng):
        from repro.core import plan_scatter

        plat = random_star_platform(rng, 5)
        prob = plat.to_problem(200, plat.host_names[0])
        res = plan_scatter(prob)
        assert sum(res.counts) == 200
