"""Tests for the canned platform scenarios."""

import pytest

from repro.core import plan_scatter, uniform_counts
from repro.tomo import run_seismic_app
from repro.workloads import latency_grid, loaded, two_site_grid, uniform_cluster


class TestUniformCluster:
    def test_shape(self):
        plat = uniform_cluster(6)
        assert len(plat.host_names) == 6
        assert plat.link("node00", "node05").transfer_time(100) == pytest.approx(0.01)

    def test_balancing_nearly_noop(self):
        """Homogeneous CPUs: only the stair remains to optimize, so the
        gain is a few percent at most (earlier-served ranks get slightly
        more because they start computing sooner)."""
        plat = uniform_cluster(8)
        prob = plat.to_problem(8000, "node07")
        res = plan_scatter(prob)
        uniform = prob.makespan(list(uniform_counts(8000, 8)))
        assert res.makespan <= uniform + 1e-12
        assert res.makespan == pytest.approx(uniform, rel=0.05)
        # Shares decrease down the service order.
        assert list(res.counts[:-1]) == sorted(res.counts[:-1], reverse=True)

    def test_invalid(self):
        with pytest.raises(ValueError):
            uniform_cluster(0)


class TestTwoSiteGrid:
    def test_sites_assigned(self):
        plat = two_site_grid()
        assert plat.hosts["fast"].site == "site-a"
        assert plat.hosts["far1"].site == "site-b"

    def test_wan_slower_than_lan(self):
        plat = two_site_grid(lan_beta=1e-5, wan_beta=5e-5)
        lan = plat.link("fast", "mid").transfer_time(1000)
        wan = plat.link("fast", "far1").transfer_time(1000)
        assert wan == pytest.approx(5 * lan)

    def test_backbone_registered(self):
        plat = two_site_grid(backbone_capacity=2)
        assert plat.backbone_between("fast", "far1")[1] == 2

    def test_backbone_optional(self):
        plat = two_site_grid(backbone_capacity=None)
        assert plat.backbone_between("fast", "far1") is None

    def test_runs_end_to_end(self):
        plat = two_site_grid()
        hosts = ["fast", "mid", "far1", "far2", "root"]
        res = run_seismic_app(plat, hosts, uniform_counts(1000, 5))
        assert res.makespan > 0


class TestLatencyGrid:
    def test_links_affine(self):
        plat = latency_grid(4, latency=0.2)
        link = plat.link("w0", "w1")
        assert link.transfer_time(0) == 0.0
        assert link.transfer_time(100) == pytest.approx(0.2 + 100 / 10_000.0)

    def test_heuristic_handles_affine(self):
        plat = latency_grid(5)
        prob = plat.to_problem(2000, "w4")
        res = plan_scatter(prob)
        assert res.algorithm.startswith("lp-heuristic")


class TestLoaded:
    def test_spike_applied(self):
        plat = loaded(uniform_cluster(4), jitter=0.0, spikes={"node01": 2.0})
        assert plat.hosts["node01"].noise.factor("node01", 5.0) == 2.0
        assert plat.hosts["node00"].noise.factor("node00", 5.0) == 1.0

    def test_jitter_applied_everywhere(self):
        plat = loaded(uniform_cluster(4), jitter=0.1, seed=3)
        factors = [
            plat.hosts[h].noise.factor(h, 0.0) for h in plat.host_names
        ]
        assert all(1.0 <= f <= 1.1 for f in factors)

    def test_unknown_spike_host(self):
        with pytest.raises(KeyError):
            loaded(uniform_cluster(3), spikes={"ghost": 2.0})

    def test_returns_same_platform(self):
        plat = uniform_cluster(3)
        assert loaded(plat) is plat

    def test_loaded_runs_slower(self):
        counts = uniform_counts(5000, 4)
        clean = run_seismic_app(uniform_cluster(4), None or uniform_cluster(4).host_names, counts)
        busy_plat = loaded(uniform_cluster(4), jitter=0.0, spikes={"node00": 3.0})
        busy = run_seismic_app(busy_plat, busy_plat.host_names, counts)
        assert busy.makespan > clean.makespan