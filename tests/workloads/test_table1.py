"""Tests for the Table 1 platform — the paper's exact experimental setup."""

import pytest

from repro.core import solve_heuristic, uniform_counts
from repro.workloads import (
    PAPER_RAY_COUNT,
    ROOT_MACHINE,
    TABLE1_MACHINES,
    table1_platform,
    table1_problem,
    table1_rank_hosts,
)


class TestTable1Data:
    def test_sixteen_processors(self):
        assert sum(len(m.cpu_numbers) for m in TABLE1_MACHINES) == 16

    def test_paper_ray_count(self):
        assert PAPER_RAY_COUNT == 817_101

    def test_root_is_dinadan_with_zero_beta(self):
        dinadan = next(m for m in TABLE1_MACHINES if m.name == ROOT_MACHINE)
        assert dinadan.beta == 0.0

    def test_ratings_inverse_to_alpha(self):
        """Rating is alpha(PIII/933)/alpha(machine), as the paper defines."""
        ref = next(m for m in TABLE1_MACHINES if m.name == "dinadan").alpha
        for m in TABLE1_MACHINES:
            assert m.rating == pytest.approx(ref / m.alpha, rel=0.02)

    def test_two_sites(self):
        sites = {m.site for m in TABLE1_MACHINES}
        assert len(sites) == 2
        leda = next(m for m in TABLE1_MACHINES if m.name == "leda")
        assert leda.site != "strasbourg"


class TestPlatform:
    def test_sixteen_hosts(self):
        assert len(table1_platform().host_names) == 16

    def test_dinadan_links_match_measured_betas(self):
        """The extrapolated mesh must reproduce every measured Table 1 row."""
        plat = table1_platform()
        for m in TABLE1_MACHINES:
            if m.name == ROOT_MACHINE:
                continue
            host = m.name if len(m.cpu_numbers) == 1 else f"{m.name}#{m.cpu_numbers[0]}"
            assert float(plat.link(ROOT_MACHINE, host).beta) == pytest.approx(m.beta)

    def test_intra_machine_free(self):
        plat = table1_platform()
        assert plat.link("merlin#5", "merlin#6").transfer_time(10_000) == 0.0
        assert plat.link("leda#9", "leda#16").transfer_time(10_000) == 0.0

    def test_cross_site_links_exist(self):
        plat = table1_platform()
        assert float(plat.link("leda#9", "caseb").beta) >= 3.53e-5

    def test_machine_metadata(self):
        plat = table1_platform()
        assert plat.hosts["sekhmet"].machine == "sekhmet"
        assert plat.hosts["leda#12"].machine == "leda"
        assert plat.hosts["leda#12"].rating == pytest.approx(0.95)


class TestRankOrdering:
    def test_descending_matches_figure_axis(self):
        """Fig. 2/3 x-axis: caseb, pellinore, sekhmet, seven x2, leda x8,
        merlin x2, dinadan."""
        hosts = table1_rank_hosts("bandwidth-desc")
        machines = [h.split("#")[0] for h in hosts]
        assert machines == (
            ["caseb", "pellinore", "sekhmet"]
            + ["seven"] * 2
            + ["leda"] * 8
            + ["merlin"] * 2
            + ["dinadan"]
        )

    def test_ascending_is_figure4_axis(self):
        hosts = table1_rank_hosts("bandwidth-asc")
        machines = [h.split("#")[0] for h in hosts]
        assert machines[:2] == ["merlin", "merlin"]
        assert machines[-1] == "dinadan"

    def test_cpu_number_order(self):
        hosts = table1_rank_hosts("cpu-number")
        assert hosts[0] == "pellinore"  # CPU #2 (dinadan #1 is the root)
        assert hosts[-1] == "dinadan"

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            table1_rank_hosts("alphabetical")


class TestPaperNumbers:
    """The quantitative shape of §5.2 must reproduce."""

    def test_uniform_fig2_shape(self):
        prob = table1_problem(PAPER_RAY_COUNT)
        times = prob.finish_times(list(uniform_counts(PAPER_RAY_COUNT, 16)))
        earliest, latest = min(times), max(times)
        # Paper measured 259 s and 853 s; the pure model gives ~226/~829.
        assert 200 < earliest < 280
        assert 780 < latest < 880
        # The laggard is 'seven' (the slow R12K), as in Fig. 2.
        laggard = prob.processors[times.index(latest)].name
        assert laggard.startswith("seven")

    def test_balanced_fig3_shape(self):
        prob = table1_problem(PAPER_RAY_COUNT)
        res = solve_heuristic(prob)
        # Paper: 405-430 s; pure model lands near 404 s.
        assert 380 < res.makespan < 440
        assert res.imbalance < 0.01  # deterministic model: near-perfect

    def test_balancing_halves_duration(self):
        prob = table1_problem(PAPER_RAY_COUNT)
        uniform_t = max(prob.finish_times(list(uniform_counts(PAPER_RAY_COUNT, 16))))
        balanced_t = solve_heuristic(prob).makespan
        assert uniform_t / balanced_t == pytest.approx(2.0, abs=0.25)

    def test_ascending_order_fig4_worse(self):
        desc = solve_heuristic(table1_problem(PAPER_RAY_COUNT)).makespan
        asc = solve_heuristic(
            table1_problem(PAPER_RAY_COUNT, order="bandwidth-asc")
        ).makespan
        assert asc > desc  # paper: +56 s measured, ~+10 s in the pure model

    def test_heuristic_error_vs_rational_below_paper_bound(self):
        """Paper: relative error < 6e-6 at n = 817,101."""
        from repro.core import solve_lp_rational

        prob = table1_problem(PAPER_RAY_COUNT)
        res = solve_heuristic(prob)
        _, t_rat = solve_lp_rational(prob)
        rel = (res.makespan - float(t_rat)) / float(t_rat)
        assert 0 <= rel < 6e-6
