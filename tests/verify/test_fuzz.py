"""Tests for the differential fuzzer (repro.verify.fuzz)."""

import random

import pytest

from repro.core import ScatterProblem
from repro.verify.fuzz import (
    INCREMENTAL_OPS,
    SHAPE_SCHEDULE,
    SHAPES,
    _instance_rng,
    _mutate_problem,
    fuzz,
    fuzz_incremental,
    fuzz_tree,
    generate_instance,
    problem_from_dict,
    problem_to_dict,
    shrink,
)


class TestGenerators:
    def test_every_shape_generates_valid_problems(self):
        rng = random.Random(1234)
        for shape in SHAPES:
            for _ in range(5):
                problem = generate_instance(shape, rng)
                assert isinstance(problem, ScatterProblem)
                assert problem.p >= 1
                assert problem.n >= 0
                problem.check_valid()

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown instance shape"):
            generate_instance("cubist", random.Random(0))

    def test_schedule_only_uses_known_shapes(self):
        assert set(SHAPE_SCHEDULE) <= set(SHAPES)

    def test_generation_is_seed_deterministic(self):
        a = generate_instance("affine", random.Random(99))
        b = generate_instance("affine", random.Random(99))
        assert problem_to_dict(a) == problem_to_dict(b)


class TestRoundTrip:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_problem_dict_round_trip(self, shape):
        rng = random.Random(7)
        for _ in range(3):
            problem = generate_instance(shape, rng)
            doc = problem_to_dict(problem)
            back = problem_from_dict(doc)
            assert back.n == problem.n
            assert back.p == problem.p
            assert problem_to_dict(back) == doc
            # Cost semantics survive: same makespan on a uniform split.
            from repro.core.distribution import uniform_counts

            counts = uniform_counts(problem.n, problem.p)
            assert problem.makespan_exact(counts) == back.makespan_exact(counts)


class TestFuzzLoop:
    def test_clean_on_shipped_tree(self):
        outcome = fuzz(40, base_seed=0)
        assert outcome.ok, [ce.to_dict() for ce in outcome.counterexamples]
        assert outcome.stats.instances == 40

    def test_deterministic_across_runs(self):
        a = fuzz(20, base_seed=5)
        b = fuzz(20, base_seed=5)
        assert a.stats.to_dict() == b.stats.to_dict()
        assert [ce.to_dict() for ce in a.counterexamples] == [
            ce.to_dict() for ce in b.counterexamples
        ]

    def test_oracle_filter_restricts_checks(self):
        outcome = fuzz(10, base_seed=0, only_oracles=["thm1-duration"])
        assert set(outcome.stats.oracle_checked) <= {"thm1-duration"}

    def test_unknown_oracle_raises(self):
        with pytest.raises(KeyError):
            fuzz(2, only_oracles=["nope"])

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            fuzz(2, shapes=["nope"])

    def test_shape_override(self):
        outcome = fuzz(6, base_seed=1, shapes=["degenerate"])
        assert outcome.stats.shapes == {"degenerate": 6}


class TestGuidedMode:
    def test_guided_is_deterministic(self):
        a = fuzz(15, base_seed=9, guided=True)
        b = fuzz(15, base_seed=9, guided=True)
        assert a.stats.to_dict() == b.stats.to_dict()

    def test_guided_explores_every_shape_then_biases(self):
        outcome = fuzz(30, base_seed=3, guided=True)
        assert outcome.ok, [ce.to_dict() for ce in outcome.counterexamples]
        # The selector must draw every candidate shape at least once...
        assert set(outcome.stats.shapes) == set(SHAPES)
        # ...and then exploit: the distribution is not the uniform-ish
        # static rotation (some shape is drawn strictly more than others).
        counts = sorted(outcome.stats.shapes.values())
        assert counts[-1] > counts[0]

    def test_guided_respects_shape_subset(self):
        outcome = fuzz(10, base_seed=1, guided=True, shapes=["linear", "affine"])
        assert set(outcome.stats.shapes) <= {"linear", "affine"}


class TestIncrementalMode:
    def test_churn_schedules_byte_match_cold(self):
        outcome = fuzz_incremental(25, base_seed=0)
        assert outcome.ok, [ce.to_dict() for ce in outcome.counterexamples]
        assert outcome.stats.instances == 25
        # Every step ran both the warm and the cold solver.
        assert outcome.stats.solver_runs >= 2 * 25

    def test_deterministic_across_runs(self):
        a = fuzz_incremental(10, base_seed=21)
        b = fuzz_incremental(10, base_seed=21)
        assert a.to_dict() == b.to_dict()

    def test_ops_validated(self):
        with pytest.raises(ValueError, match="ops"):
            fuzz_incremental(1, ops=0)

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            fuzz_incremental(2, shapes=["nope"])

    def test_mutations_preserve_validity(self):
        rng = random.Random(77)
        for shape in SHAPES:
            problem = generate_instance(shape, _instance_rng(0, 13))
            current = problem
            for _ in range(8):
                op, current = _mutate_problem(current, problem.n, rng)
                assert op in INCREMENTAL_OPS
                current.check_valid()
                assert current.p >= 1
                assert 0 <= current.n <= problem.n


class TestTreeMode:
    def test_tree_corpus_clean(self):
        outcome = fuzz_tree(25, base_seed=0)
        assert outcome.ok, [ce.to_dict() for ce in outcome.counterexamples]
        assert outcome.stats.instances == 25
        # Every instance ran both the flat and the tree planner.
        assert outcome.stats.solver_runs >= 2 * 25

    def test_tree_lower_bound_oracle_exercised(self):
        outcome = fuzz_tree(20, base_seed=1)
        assert outcome.ok, [ce.to_dict() for ce in outcome.counterexamples]
        assert outcome.stats.oracle_checked.get("tree-lower-bound", 0) >= 20
        # The warm-vs-cold differential oracle is the one check that does
        # not apply to the tree sweep (it re-plans flat schedules).
        assert "incremental-matches-cold" not in outcome.stats.oracle_checked

    def test_deterministic_across_runs(self):
        a = fuzz_tree(10, base_seed=21)
        b = fuzz_tree(10, base_seed=21)
        assert a.to_dict() == b.to_dict()

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            fuzz_tree(2, shapes=["nope"])

    def test_shape_subset_respected(self):
        outcome = fuzz_tree(8, base_seed=4, shapes=["affine"])
        assert set(outcome.stats.shapes) == {"affine"}


class TestShrink:
    def test_shrinks_processor_count_and_n(self):
        rng = random.Random(42)
        problem = generate_instance("linear", rng)
        # Predicate independent of the instance detail: "has >= 2 procs".
        shrunk = shrink(problem, lambda cand: cand.p >= 2)
        assert shrunk.p == 2
        assert shrunk.n == 0

    def test_keeps_failure_reproducible(self):
        rng = random.Random(43)
        problem = generate_instance("affine", rng)

        def fails(cand):
            return cand.n >= 10

        shrunk = shrink(problem, fails)
        if problem.n >= 10:
            assert fails(shrunk)
            assert shrunk.n == 10

    def test_crashing_predicate_counts_as_failing(self):
        rng = random.Random(44)
        problem = generate_instance("linear", rng)

        def explodes(cand):
            raise RuntimeError("predicate bug")

        shrunk = shrink(problem, explodes)
        assert shrunk.p == 1  # everything was droppable


@pytest.mark.slow
class TestDeepFuzz:
    """The acceptance-criteria tier: >= 100 instances per theorem oracle."""

    def test_deep_fuzz_clean_and_covered(self):
        outcome = fuzz(350, base_seed=0)
        assert outcome.ok, [ce.to_dict() for ce in outcome.counterexamples]
        checked = outcome.stats.oracle_checked
        for oracle_id in (
            "thm1-duration",
            "thm2-endings",
            "thm3-ordering",
            "eq4-lp-bound",
        ):
            assert checked.get(oracle_id, 0) >= 100, (oracle_id, checked)

    def test_second_base_seed_also_clean(self):
        outcome = fuzz(150, base_seed=0xA5A5)
        assert outcome.ok, [ce.to_dict() for ce in outcome.counterexamples]

    def test_incremental_differential_500_schedules(self):
        # Acceptance tier: every warm re-plan byte-matches the cold solve
        # across >= 500 seeded kill/perturb/resize schedules.
        outcome = fuzz_incremental(500, base_seed=0)
        assert outcome.ok, [ce.to_dict() for ce in outcome.counterexamples]
        assert outcome.stats.instances == 500

    def test_tree_differential_500_seeds(self):
        # Acceptance tier: the tree planner dominates flat and satisfies
        # every applicable oracle (tree-lower-bound included) on >= 500
        # fuzzed instances.
        outcome = fuzz_tree(500, base_seed=0)
        assert outcome.ok, [ce.to_dict() for ce in outcome.counterexamples]
        assert outcome.stats.instances == 500
        assert outcome.stats.oracle_checked.get("tree-lower-bound", 0) >= 500
