"""Tests for the paper-theorem verification harness (repro.verify)."""
