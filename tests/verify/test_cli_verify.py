"""CLI tests for ``repro-scatter verify``."""

import json

import pytest

import repro.verify
from repro.cli import main
from repro.verify.fuzz import Counterexample, FuzzOutcome, FuzzStats


class TestVerifyCli:
    def test_small_clean_run_exits_zero(self, capsys):
        code = main(["verify", "--seeds", "8", "--skip-golden"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verify: OK" in out
        assert "mutation: planted rounding bug caught" in out

    def test_list_oracles(self, capsys):
        assert main(["verify", "--list-oracles"]) == 0
        out = capsys.readouterr().out
        assert "thm1-duration" in out
        assert "eq4-lp-bound" in out

    def test_unknown_oracle_is_usage_error(self, capsys):
        assert main(["verify", "--seeds", "2", "--oracle", "nope"]) == 2
        assert "unknown oracle" in capsys.readouterr().err

    def test_oracle_filter_skips_mutation_and_golden(self, capsys):
        code = main(["verify", "--seeds", "4", "--oracle", "dist-valid"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mutation" not in out
        assert "golden" not in out

    def test_json_report(self, capsys):
        code = main(
            ["verify", "--seeds", "4", "--skip-golden", "--skip-mutation", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["fuzz"]["stats"]["instances"] == 4
        assert doc["mutation"] is None

    def test_golden_check_runs_in_default_mode(self, capsys):
        code = main(["verify", "--seeds", "2", "--skip-mutation"])
        out = capsys.readouterr().out
        assert code == 0
        assert "golden: all snapshots byte-identical" in out

    def test_tree_mode_clean_run_exits_zero(self, capsys):
        code = main(["verify", "--mode", "tree", "--seeds", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verify: OK" in out
        # Focused differential sweep: no mutation or golden legs.
        assert "mutation" not in out
        assert "golden" not in out

    def test_tree_mode_json_report(self, capsys):
        code = main(["verify", "--mode", "tree", "--seeds", "4", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["fuzz"]["stats"]["instances"] == 4
        assert doc["fuzz"]["stats"]["oracle_checked"]["tree-lower-bound"] >= 4

    def test_tree_mode_rejects_oracle_filter(self, capsys):
        code = main(["verify", "--mode", "tree", "--oracle", "dist-valid"])
        assert code == 2
        assert "--oracle cannot be combined" in capsys.readouterr().err


class TestVerifyCliFailurePath:
    @pytest.fixture
    def failing_fuzz(self, monkeypatch):
        ce = Counterexample(
            seed=3,
            shape="linear",
            violations=(("thm1-duration", "synthetic violation"),),
            problem={"n": 1, "processors": []},
            original_p=4,
            original_n=50,
            shrunk_p=2,
            shrunk_n=3,
        )
        stats = FuzzStats(instances=5, solver_runs=10, shapes={"linear": 5})

        def fake_fuzz(seeds, **kwargs):
            return FuzzOutcome(stats=stats, counterexamples=(ce,))

        monkeypatch.setattr(repro.verify, "fuzz", fake_fuzz)
        return ce

    def test_counterexample_exits_one(self, failing_fuzz, capsys):
        code = main(["verify", "--seeds", "5", "--skip-golden", "--skip-mutation"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL seed=3" in out
        assert "synthetic violation" in out
        assert "verify: FAIL" in out

    def test_counterexample_artifact_written(self, failing_fuzz, capsys, tmp_path):
        artifact = tmp_path / "ce.json"
        code = main(
            [
                "verify",
                "--seeds",
                "5",
                "--skip-golden",
                "--skip-mutation",
                "--counterexamples",
                str(artifact),
            ]
        )
        assert code == 1
        doc = json.loads(artifact.read_text())
        assert doc["ok"] is False
        assert doc["fuzz"]["counterexamples"][0]["seed"] == 3

    def test_no_artifact_on_success(self, capsys, tmp_path):
        artifact = tmp_path / "ce.json"
        code = main(
            [
                "verify",
                "--seeds",
                "2",
                "--skip-golden",
                "--skip-mutation",
                "--counterexamples",
                str(artifact),
            ]
        )
        assert code == 0
        assert not artifact.exists()


class TestUpdateGolden:
    def test_update_golden_no_op_on_clean_tree(self, capsys):
        # The shipped snapshots are current, so rebaselining changes nothing
        # (and must not dirty the checked-in files).
        code = main(["verify", "--update-golden"])
        out = capsys.readouterr().out
        assert code == 0
        assert "already current" in out
