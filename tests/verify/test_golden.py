"""Golden-trace regression tests (repro.verify.golden)."""

import json

import pytest

from repro.verify.golden import (
    GOLDEN_DIR,
    check_golden,
    golden_scenarios,
    render_scenario,
    update_golden,
)


class TestRendering:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown golden scenario"):
            render_scenario("nope.json")

    @pytest.mark.parametrize("name", sorted(golden_scenarios()))
    def test_byte_stable_across_two_renders(self, name):
        assert render_scenario(name) == render_scenario(name)

    def test_no_wall_clock_leaks_into_plans(self):
        docs = json.loads(render_scenario("plan-closed-form.json"))
        for doc in docs:
            assert "profile" not in doc
        lp = json.loads(render_scenario("plan-lp.json"))
        assert "profile" not in lp

    def test_metrics_delta_is_integer_only(self):
        delta = json.loads(render_scenario("run-metrics.json"))
        assert delta, "traced run should move net/mpi instruments"

        def all_ints(value):
            if isinstance(value, dict):
                return all(all_ints(v) for v in value.values())
            return isinstance(value, int)

        assert all_ints(delta)
        assert all(k.startswith(("net.", "mpi.")) for k in delta)

    def test_chrome_scenario_contains_flow_events(self):
        doc = json.loads(render_scenario("trace-chrome.json"))
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.count("s") == phases.count("f") > 0


class TestCheckedInSnapshots:
    def test_shipped_tree_matches_goldens(self):
        drifts = check_golden()
        assert drifts == [], [d.to_dict() for d in drifts]

    def test_all_scenarios_have_snapshot_files(self):
        for name in golden_scenarios():
            assert (GOLDEN_DIR / name).exists(), name


class TestDriftDetection:
    def test_missing_snapshot_reported(self, tmp_path):
        drifts = check_golden(tmp_path, names=["plan-lp.json"])
        assert [d.status for d in drifts] == ["missing"]

    def test_update_then_check_is_clean(self, tmp_path):
        written = update_golden(tmp_path, names=["plan-lp.json"])
        assert written == ["plan-lp.json"]
        assert check_golden(tmp_path, names=["plan-lp.json"]) == []
        # Second update is a no-op (already byte-identical).
        assert update_golden(tmp_path, names=["plan-lp.json"]) == []

    def test_tampered_snapshot_reports_drift_with_diff(self, tmp_path):
        update_golden(tmp_path, names=["plan-lp.json"])
        path = tmp_path / "plan-lp.json"
        path.write_text(path.read_text().replace("lp-heuristic", "lp-tampered"))
        drifts = check_golden(tmp_path, names=["plan-lp.json"])
        assert [d.status for d in drifts] == ["drift"]
        assert "lp-tampered" in drifts[0].diff
        assert "lp-heuristic" in drifts[0].diff
