"""Unit tests for the oracle registry (repro.verify.oracles)."""

from fractions import Fraction

import pytest

from repro.core import Processor, ScatterProblem, plan_scatter
from repro.verify.oracles import (
    EXACT_DP_ALGORITHMS,
    ORACLES,
    applicable_algorithms,
    incremental_schedule,
    oracle_ids,
    run_oracles,
    solve_all,
)

F = Fraction


def report_map(problem, results, **kwargs):
    return {r.oracle_id: r for r in run_oracles(problem, results, **kwargs)}


@pytest.fixture
def linear_problem():
    return ScatterProblem(
        [
            Processor.linear("a", alpha=0.004, beta=1e-5),
            Processor.linear("b", alpha=0.009, beta=2e-5),
            Processor.linear("c", alpha=0.016, beta=5e-5),
            Processor.linear("root", alpha=0.009, beta=0.0),
        ],
        n=60,
    )


class TestRegistry:
    def test_all_ten_oracles_registered(self):
        assert set(oracle_ids()) == {
            "eq1-recompute",
            "dist-valid",
            "rounding-within-one",
            "exact-agree",
            "thm1-duration",
            "thm2-endings",
            "thm3-ordering",
            "eq4-lp-bound",
            "tree-lower-bound",
            "incremental-matches-cold",
        }

    def test_descriptions_are_nonempty(self):
        for oracle in ORACLES.values():
            assert oracle.description

    def test_unknown_only_raises(self, linear_problem):
        with pytest.raises(KeyError, match="no-such-oracle"):
            run_oracles(linear_problem, {}, only=["no-such-oracle"])

    def test_inapplicable_reports_flagged(self, linear_problem):
        # A non-affine instance: theorem oracles must say inapplicable.
        from repro.core.costs import TabulatedCost

        tab = TabulatedCost([F(0), F(1), F(3), F(7)])
        problem = ScatterProblem(
            [Processor("x", tab, tab), Processor("root", TabulatedCost([F(0)] * 4), tab)],
            n=3,
        )
        reports = report_map(problem, {})
        assert not reports["thm1-duration"].applicable
        assert not reports["eq4-lp-bound"].applicable
        assert reports["dist-valid"].applicable


class TestSolveAll:
    def test_applicable_algorithms_linear(self, linear_problem):
        algos = applicable_algorithms(linear_problem)
        assert "uniform" in algos
        assert "dp-basic" in algos
        assert "closed-form" in algos
        assert "lp-heuristic" in algos

    def test_dp_gate_respects_max_dp_n(self, linear_problem):
        algos = applicable_algorithms(linear_problem.with_n(10_000), max_dp_n=100)
        assert "dp-basic" not in algos
        assert "dp-fast" in algos

    def test_solve_all_produces_results_not_crashes(self, linear_problem):
        results, crashes = solve_all(linear_problem)
        assert crashes == {}
        assert set(results) == set(applicable_algorithms(linear_problem))

    def test_crash_recorded_not_raised(self, linear_problem):
        results, crashes = solve_all(
            linear_problem, algorithms=["closed-form", "no-such-algo"]
        )
        assert "closed-form" in results
        assert "no-such-algo" in crashes


class TestOraclesPassOnHonestSolvers:
    def test_clean_linear_instance(self, linear_problem):
        results, crashes = solve_all(linear_problem)
        assert crashes == {}
        for report in run_oracles(linear_problem, results):
            assert report.ok, (report.oracle_id, report.violations)


class TestOraclesCatchTampering:
    def test_eq1_catches_wrong_makespan(self, linear_problem):
        result = plan_scatter(linear_problem, algorithm="dp-basic", order_policy=None)
        object.__setattr__(result, "makespan", result.makespan * 2 + 1.0)
        reports = report_map(linear_problem, {"dp-basic": result})
        assert not reports["eq1-recompute"].ok

    def test_dist_valid_catches_bad_sum(self, linear_problem):
        result = plan_scatter(linear_problem, algorithm="dp-basic", order_policy=None)
        bad = (result.counts[0] + 1,) + result.counts[1:]
        object.__setattr__(result, "counts", bad)
        reports = report_map(linear_problem, {"dp-basic": result})
        assert any("sum" in v for v in reports["dist-valid"].violations)

    def test_dist_valid_catches_negative(self, linear_problem):
        result = plan_scatter(linear_problem, algorithm="dp-basic", order_policy=None)
        bad = (-1, result.counts[0] + result.counts[1] + 1) + result.counts[2:]
        object.__setattr__(result, "counts", bad)
        reports = report_map(linear_problem, {"dp-basic": result})
        assert any("negative" in v for v in reports["dist-valid"].violations)

    def test_rounding_catches_far_count(self, linear_problem):
        result = plan_scatter(
            linear_problem, algorithm="lp-heuristic", order_policy=None
        )
        assert "rational_shares" in result.info
        counts = list(result.counts)
        # Move 2 items between the first two ranks: breaks |n' - n| < 1
        # while keeping the sum intact.
        counts[0] += 2
        counts[1] -= 2
        object.__setattr__(result, "counts", tuple(counts))
        reports = report_map(linear_problem, {"lp-heuristic": result})
        assert not reports["rounding-within-one"].ok

    def test_exact_agree_catches_disagreement(self, linear_problem):
        a = plan_scatter(linear_problem, algorithm="dp-basic", order_policy=None)
        b = plan_scatter(linear_problem, algorithm="dp-fast", order_policy=None)
        # Force a suboptimal distribution onto one "exact" solver.
        from repro.core.distribution import uniform_counts

        worse = uniform_counts(linear_problem.n, linear_problem.p)
        if worse != a.counts:
            object.__setattr__(b, "counts", worse)
            reports = report_map(linear_problem, {"dp-basic": a, "dp-fast": b})
            assert not reports["exact-agree"].ok

    def test_thm3_catches_bad_claimed_order(self):
        # An instance ordered ascending-by-bandwidth: the oracle compares
        # the *bandwidth-desc* ordering against permutations of the given
        # problem, so it passes — it verifies the theorem, not the input
        # order.  Sanity-check it is exercised and ok here.
        problem = ScatterProblem(
            [
                Processor.linear("slow-link", alpha=0.01, beta=5e-3),
                Processor.linear("fast-link", alpha=0.01, beta=1e-5),
                Processor.linear("root", alpha=0.01, beta=0.0),
            ],
            n=40,
        )
        reports = report_map(problem, {})
        assert reports["thm3-ordering"].applicable
        assert reports["thm3-ordering"].ok

    def test_oracle_crash_is_reported_not_raised(self, linear_problem):
        class Boom:
            """A result-shaped object whose counts explode on access."""

            @property
            def counts(self):
                raise RuntimeError("boom")

            makespan = 0.0
            makespan_exact = None
            info = {}

        reports = report_map(linear_problem, {"dp-basic": Boom()})
        eq1 = reports["eq1-recompute"]
        assert not eq1.ok
        assert any("oracle crashed" in v for v in eq1.violations)


class TestIncrementalOracle:
    def test_schedule_covers_every_churn_kind(self, linear_problem):
        steps = incremental_schedule(linear_problem)
        kinds = [kind for kind, _ in steps]
        assert kinds[0] == "seed"
        assert {"remove-front", "shrink-n", "grow-n", "perturb-link"} <= set(kinds)
        for _, step in steps:
            step.check_valid()

    def test_passes_on_honest_planner(self, linear_problem):
        reports = report_map(linear_problem, {})
        report = reports["incremental-matches-cold"]
        assert report.applicable
        assert report.ok, report.violations

    def test_passes_on_dp_route(self):
        import random

        from repro.workloads import random_tabulated_problem

        problem = random_tabulated_problem(random.Random(17), 5, 30)
        report = report_map(problem, {})["incremental-matches-cold"]
        assert report.ok, report.violations


class TestDegenerateInstances:
    @pytest.mark.parametrize(
        "p,n", [(1, 0), (1, 7), (3, 0), (4, 2)], ids=["p1n0", "p1n7", "p3n0", "n<p"]
    )
    def test_oracles_hold_on_edges(self, p, n):
        procs = [
            Processor.linear(f"P{i}", alpha=0.01 * (i + 1), beta=1e-4)
            for i in range(p - 1)
        ]
        procs.append(Processor.linear("root", alpha=0.01, beta=0.0))
        problem = ScatterProblem(procs, n)
        results, crashes = solve_all(problem)
        assert crashes == {}
        for report in run_oracles(problem, results):
            assert report.ok, (report.oracle_id, report.violations)
