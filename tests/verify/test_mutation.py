"""The mutation smoke-check: the harness must catch a planted bug."""

from fractions import Fraction

from repro.verify.fuzz import (
    _mutant_round_floor_dump,
    mutation_smoke_check,
    problem_from_dict,
)

F = Fraction


class TestMutantRounding:
    def test_mutant_preserves_sum_but_not_distance(self):
        shares = [F(5, 3), F(5, 3), F(5, 3)]
        out = _mutant_round_floor_dump(shares, 5)
        assert sum(out) == 5
        # All leftover lands on index 0: |3 - 5/3| >= 1.
        assert out == (3, 1, 1)
        assert abs(F(out[0]) - shares[0]) >= 1

    def test_mutant_is_honest_on_integral_shares(self):
        shares = [F(2), F(3), F(1)]
        assert _mutant_round_floor_dump(shares, 6) == (2, 3, 1)


class TestMutationSmokeCheck:
    def test_planted_bug_is_caught_and_shrunk(self):
        result = mutation_smoke_check()
        assert result.caught, "oracles failed to flag the planted rounding bug"
        # Acceptance criterion: shrunk counterexample with p <= 3, n <= 20.
        assert result.shrunk_p is not None and result.shrunk_p <= 3
        assert result.shrunk_n is not None and result.shrunk_n <= 20
        assert result.violations
        flagged = {oracle_id for oracle_id, _ in result.violations}
        assert flagged & {"rounding-within-one", "eq4-lp-bound", "dist-valid"}

    def test_counterexample_reproduces(self):
        result = mutation_smoke_check()
        assert result.problem is not None
        problem = problem_from_dict(result.problem)
        from repro.verify.fuzz import _mutant_failures

        assert _mutant_failures(problem)

    def test_deterministic(self):
        a = mutation_smoke_check()
        b = mutation_smoke_check()
        assert a.to_dict() == b.to_dict()
