"""Tests for the iterative tomographic inversion."""

import numpy as np
import pytest

from repro.tomo import (
    RayTracer,
    TomographicInversion,
    run_parallel_inversion,
    scale_earth,
    simplified_iasp91,
)

GRIDS = (128, 512, 256)  # small tracer grids keep rounds cheap


@pytest.fixture(scope="module")
def synthetic_case():
    """Hidden true model (mantle 5% fast) + observed times."""
    ref = simplified_iasp91()
    true_scales = [1.0, 1.0, 1.05, 1.05, 1.03, 1.0]
    truth = RayTracer(scale_earth(ref, true_scales), n_p=GRIDS[0], n_r=GRIDS[1],
                      n_delta=GRIDS[2])
    rng = np.random.default_rng(11)
    delta = rng.uniform(np.deg2rad(5), np.deg2rad(90), 1500)
    observed = truth.travel_times(delta)
    return ref, true_scales, delta, observed


class TestScaleEarth:
    def test_scales_velocities(self):
        ref = simplified_iasp91()
        scaled = scale_earth(ref, [2.0] * len(ref.layers))
        r = np.array([5000.0])
        assert scaled.velocity(r)[0] == pytest.approx(2 * ref.velocity(r)[0])

    def test_length_checked(self):
        with pytest.raises(ValueError):
            scale_earth(simplified_iasp91(), [1.0])

    def test_positive_checked(self):
        ref = simplified_iasp91()
        with pytest.raises(ValueError):
            scale_earth(ref, [0.0] * len(ref.layers))


class TestSerialInversion:
    def test_rms_decreases(self, synthetic_case):
        ref, _, delta, observed = synthetic_case
        inv = TomographicInversion(ref, delta, observed, damping=0.6,
                                   tracer_grids=GRIDS)
        hist = inv.run(rounds=4)
        assert len(hist) == 4
        assert hist[-1].rms_residual < 0.5 * hist[0].rms_residual

    def test_recovers_mantle_scales(self, synthetic_case):
        ref, true_scales, delta, observed = synthetic_case
        inv = TomographicInversion(ref, delta, observed, damping=0.6,
                                   tracer_grids=GRIDS)
        inv.run(rounds=6)
        # Layers 2 and 3 (lower mantle, transition zone) dominate the ray
        # coverage; the inversion should land near their true 1.05.
        assert inv.scales[2] == pytest.approx(true_scales[2], abs=0.02)
        assert inv.scales[3] == pytest.approx(true_scales[3], abs=0.02)

    def test_perfect_start_stays_put(self, synthetic_case):
        ref, true_scales, delta, observed = synthetic_case
        inv = TomographicInversion(ref, delta, observed, damping=0.5,
                                   tracer_grids=GRIDS)
        inv.scales = list(true_scales)
        hist = inv.run(rounds=1)
        assert hist[0].rms_residual < 1.0
        for got, true in zip(inv.scales, true_scales):
            assert got == pytest.approx(true, abs=0.01)

    def test_input_validation(self):
        ref = simplified_iasp91()
        with pytest.raises(ValueError, match="shape"):
            TomographicInversion(ref, np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError, match="damping"):
            TomographicInversion(ref, np.zeros(3), np.zeros(3), damping=0.0)

    def test_layer_statistics_partition(self, synthetic_case):
        """Per-chunk statistics must sum to the whole-catalog statistics —
        the property that makes the parallel version exact."""
        ref, _, delta, observed = synthetic_case
        inv = TomographicInversion(ref, delta, observed, tracer_grids=GRIDS)
        tracer = inv.current_tracer()
        whole = inv.layer_statistics(tracer, delta, observed)
        half = len(delta) // 2
        a = inv.layer_statistics(tracer, delta[:half], observed[:half])
        b = inv.layer_statistics(tracer, delta[half:], observed[half:])
        np.testing.assert_allclose(whole[0], a[0] + b[0])
        np.testing.assert_array_equal(whole[1], a[1] + b[1])
        assert whole[2] == pytest.approx(a[2] + b[2])


class TestParallelInversion:
    def test_matches_serial(self, synthetic_case):
        """The SPMD inversion must produce the same scales as the serial
        loop (scatter/gather/bcast move data but not the maths)."""
        from repro.workloads import table1_platform, table1_rank_hosts

        ref, _, delta, observed = synthetic_case
        serial = TomographicInversion(ref, delta, observed, damping=0.6,
                                      tracer_grids=GRIDS)
        serial.run(rounds=2)

        parallel = TomographicInversion(ref, delta, observed, damping=0.6,
                                        tracer_grids=GRIDS)
        platform = table1_platform()
        hosts = table1_rank_hosts()
        history, duration = run_parallel_inversion(platform, hosts, parallel, rounds=2)
        assert duration > 0
        assert len(history) == 2
        np.testing.assert_allclose(parallel.scales, serial.scales, rtol=1e-12)

    def test_balanced_counts_run_faster(self, synthetic_case):
        from repro.tomo import plan_counts
        from repro.workloads import table1_platform, table1_rank_hosts

        ref, _, delta, observed = synthetic_case
        platform = table1_platform()
        hosts = table1_rank_hosts()

        inv_u = TomographicInversion(ref, delta, observed, tracer_grids=GRIDS)
        _, t_uniform = run_parallel_inversion(platform, hosts, inv_u, rounds=1)

        inv_b = TomographicInversion(ref, delta, observed, tracer_grids=GRIDS)
        balanced = plan_counts(platform, hosts, len(delta), algorithm="lp-heuristic")
        _, t_balanced = run_parallel_inversion(
            platform, hosts, inv_b, rounds=1, counts=balanced
        )
        assert t_balanced < t_uniform

    def test_counts_validated(self, synthetic_case):
        from repro.workloads import table1_platform, table1_rank_hosts

        ref, _, delta, observed = synthetic_case
        inv = TomographicInversion(ref, delta, observed, tracer_grids=GRIDS)
        with pytest.raises(ValueError, match="sum"):
            run_parallel_inversion(
                table1_platform(), table1_rank_hosts(), inv, rounds=1,
                counts=[1] * 16,
            )
