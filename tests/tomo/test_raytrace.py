"""Tests for the ray tracer — sanity of the physics and of the fast paths."""

import numpy as np
import pytest

from repro.tomo import RayTracer, generate_catalog, simplified_iasp91


@pytest.fixture(scope="module")
def tracer():
    # Module-scoped: the curve construction is the expensive part.
    return RayTracer(n_p=512, n_r=2048, n_delta=1024)


class TestBranchCurves:
    def test_cached(self, tracer):
        assert tracer.branch_curves() is tracer.branch_curves()

    def test_shapes(self, tracer):
        c = tracer.branch_curves()
        assert c.p.shape == c.delta.shape == c.time.shape == (512,)

    def test_nonnegative(self, tracer):
        c = tracer.branch_curves()
        assert (c.delta >= 0).all()
        assert (c.time >= 0).all()

    def test_grazing_rays_stay_shallow_and_short(self, tracer):
        """Largest p (near-surface turning): small distance, small time."""
        c = tracer.branch_curves()
        assert c.delta[-1] < 0.2
        assert c.time[-1] < 300.0


class TestTravelTimeCurve:
    def test_monotone(self, tracer):
        """First-arrival times never decrease with distance."""
        grid, t = tracer.travel_time_curve()
        assert (np.diff(t) >= 0).all()

    def test_zero_at_zero(self, tracer):
        grid, t = tracer.travel_time_curve()
        assert t[0] == 0.0

    def test_realistic_teleseismic_times(self, tracer):
        """Published IASP91 P travel times: ~370 s at 30 deg, ~600 s at
        60 deg.  The simplified model should be within ~10%."""
        t30 = tracer.travel_times(np.deg2rad([30.0]))[0]
        t60 = tracer.travel_times(np.deg2rad([60.0]))[0]
        assert 330 < t30 < 410
        assert 540 < t60 < 660

    def test_local_distance_speed(self, tracer):
        """At very short range the apparent velocity is crustal/upper-mantle
        (6-9 km/s)."""
        d = np.deg2rad(2.0)
        t = tracer.travel_times(np.array([d]))[0]
        surface_km = d * 6371.0
        assert 5.0 < surface_km / t < 12.0


class TestTravelTimes:
    def test_vectorized_matches_scalar(self, tracer):
        ds = np.deg2rad(np.array([10.0, 45.0, 90.0]))
        batch = tracer.travel_times(ds)
        singles = [tracer.travel_times(np.array([d]))[0] for d in ds]
        np.testing.assert_allclose(batch, singles)

    def test_negative_distance_folded(self, tracer):
        a = tracer.travel_times(np.array([0.5]))
        b = tracer.travel_times(np.array([-0.5]))
        np.testing.assert_allclose(a, b)

    def test_depth_correction_reduces_time(self, tracer):
        d = np.deg2rad([40.0])
        shallow = tracer.travel_times(d)
        deep = tracer.travel_times(d, depth_km=np.array([500.0]))
        assert deep[0] < shallow[0]

    def test_depth_correction_never_negative(self, tracer):
        t = tracer.travel_times(np.array([0.001]), depth_km=np.array([700.0]))
        assert t[0] >= 0.0


class TestRayPath:
    def test_path_starts_and_ends_at_surface(self, tracer):
        eta_surface = 6371.0 / 5.8
        delta, r = tracer.ray_path(p=eta_surface * 0.3)
        assert r[0] == pytest.approx(r[-1], rel=1e-6)
        assert r[0] > 6000.0

    def test_path_symmetric(self, tracer):
        delta, r = tracer.ray_path(p=300.0)
        np.testing.assert_allclose(r, r[::-1], rtol=1e-9)

    def test_turning_depth_increases_for_steeper_rays(self, tracer):
        _, r_steep = tracer.ray_path(p=100.0)
        _, r_grazing = tracer.ray_path(p=900.0)
        assert r_steep.min() < r_grazing.min()

    def test_delta_monotone_along_path(self, tracer):
        delta, _ = tracer.ray_path(p=400.0)
        assert (np.diff(delta) >= -1e-12).all()


class TestTraceCatalog:
    def test_catalog_tracing(self, tracer):
        cat = generate_catalog(500, seed=5)
        times = tracer.trace_catalog(cat)
        assert times.shape == (500,)
        assert (times >= 0).all()
        assert times.max() < 1500.0  # nothing slower than antipodal P

    def test_deterministic(self, tracer):
        cat = generate_catalog(100, seed=6)
        np.testing.assert_array_equal(
            tracer.trace_catalog(cat), tracer.trace_catalog(cat)
        )


class TestValidation:
    def test_grid_sizes_validated(self):
        with pytest.raises(ValueError):
            RayTracer(n_p=2)

    def test_custom_earth_accepted(self):
        t = RayTracer(simplified_iasp91(), n_p=64, n_r=256, n_delta=64)
        assert t.travel_times(np.array([0.5]))[0] > 0
