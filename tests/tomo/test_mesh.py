"""Tests for the Earth mesh and ray-coverage accumulation."""

import numpy as np
import pytest

from repro.tomo import EarthMesh, RayTracer, coverage_by_depth, generate_catalog, ray_coverage
from repro.tomo.mesh import _slerp


@pytest.fixture(scope="module")
def tracer():
    return RayTracer(n_p=192, n_r=768, n_delta=384)


class TestEarthMesh:
    def test_shape_and_count(self):
        mesh = EarthMesh(n_lat=18, n_lon=36, n_depth=10)
        assert mesh.shape == (10, 18, 36)
        assert mesh.n_cells == 6480

    def test_cell_indices_corners(self):
        mesh = EarthMesh(n_lat=18, n_lon=36, n_depth=10, max_depth_km=1000.0)
        i_dep, i_lat, i_lon = mesh.cell_indices(
            np.array([-90.0, 90.0]), np.array([-180.0, 179.99]), np.array([0.0, 999.9])
        )
        assert i_lat.tolist() == [0, 17]
        assert i_lon.tolist() == [0, 35]
        assert i_dep.tolist() == [0, 9]

    def test_longitude_wrap(self):
        mesh = EarthMesh(n_lon=36)
        _, _, a = mesh.cell_indices(np.array([0.0]), np.array([190.0]), np.array([0.0]))
        _, _, b = mesh.cell_indices(np.array([0.0]), np.array([-170.0]), np.array([0.0]))
        assert a == b

    def test_depth_clipped(self):
        mesh = EarthMesh(n_depth=5, max_depth_km=100.0)
        i_dep, _, _ = mesh.cell_indices(np.array([0.0]), np.array([0.0]), np.array([500.0]))
        assert i_dep[0] == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            EarthMesh(n_lat=0)
        with pytest.raises(ValueError):
            EarthMesh(max_depth_km=0.0)

    def test_depth_edges(self):
        mesh = EarthMesh(n_depth=4, max_depth_km=400.0)
        np.testing.assert_allclose(mesh.depth_edges(), [0, 100, 200, 300, 400])


class TestSlerp:
    def test_endpoints(self):
        u = np.array([[1.0, 0.0, 0.0]])
        v = np.array([[0.0, 1.0, 0.0]])
        pts = _slerp(u, v, np.array([np.pi / 2]), np.array([0.0, 1.0]))
        np.testing.assert_allclose(pts[0, 0], u[0], atol=1e-12)
        np.testing.assert_allclose(pts[0, 1], v[0], atol=1e-12)

    def test_midpoint_on_circle(self):
        u = np.array([[1.0, 0.0, 0.0]])
        v = np.array([[0.0, 1.0, 0.0]])
        pts = _slerp(u, v, np.array([np.pi / 2]), np.array([0.5]))
        np.testing.assert_allclose(pts[0, 0], [2**-0.5, 2**-0.5, 0.0], atol=1e-12)

    def test_unit_norm(self):
        rng = np.random.default_rng(0)
        u = rng.normal(size=(20, 3))
        u /= np.linalg.norm(u, axis=1, keepdims=True)
        v = rng.normal(size=(20, 3))
        v /= np.linalg.norm(v, axis=1, keepdims=True)
        delta = np.arccos(np.clip(np.sum(u * v, axis=1), -1, 1))
        pts = _slerp(u, v, delta, np.linspace(0, 1, 7))
        np.testing.assert_allclose(np.linalg.norm(pts, axis=-1), 1.0, atol=1e-9)

    def test_degenerate_pair(self):
        u = np.array([[0.0, 0.0, 1.0]])
        pts = _slerp(u, u.copy(), np.array([0.0]), np.array([0.3, 0.9]))
        np.testing.assert_allclose(pts[0], [u[0], u[0]], atol=1e-9)


class TestRayCoverage:
    def test_sample_conservation(self, tracer):
        cat = generate_catalog(800, seed=4)
        mesh = EarthMesh(n_lat=12, n_lon=24, n_depth=6)
        counts = ray_coverage(tracer, cat, mesh, points_per_ray=16)
        assert counts.sum() == 800 * 16

    def test_empty_catalog(self, tracer):
        mesh = EarthMesh()
        counts = ray_coverage(tracer, generate_catalog(0, seed=1), mesh)
        assert counts.sum() == 0

    def test_short_rays_stay_shallow(self, tracer):
        """Local rays (2°) never reach the lower mantle."""
        cat = generate_catalog(50, seed=5)
        cat["src_lat"] = 0.0
        cat["src_lon"] = np.linspace(0, 40, 50)
        cat["sta_lat"] = 0.0
        cat["sta_lon"] = cat["src_lon"] + 2.0
        mesh = EarthMesh(n_depth=10, max_depth_km=2900.0)
        counts = ray_coverage(tracer, cat, mesh, points_per_ray=16)
        per_shell = counts.reshape(10, -1).sum(axis=1)
        assert per_shell[0] > 0
        assert per_shell[5:].sum() == 0

    def test_teleseismic_rays_reach_depth(self, tracer):
        cat = generate_catalog(20, seed=6)
        cat["src_lat"] = 0.0
        cat["src_lon"] = 0.0
        cat["sta_lat"] = 0.0
        cat["sta_lon"] = 85.0
        mesh = EarthMesh(n_depth=10, max_depth_km=2900.0)
        counts = ray_coverage(tracer, cat, mesh, points_per_ray=24)
        per_shell = counts.reshape(10, -1).sum(axis=1)
        assert per_shell[-3:].sum() > 0  # bottoms near the CMB

    def test_validation(self, tracer):
        with pytest.raises(ValueError):
            ray_coverage(tracer, generate_catalog(1, seed=1), EarthMesh(),
                         points_per_ray=1)


class TestCoverageByDepth:
    def test_fractions(self):
        mesh = EarthMesh(n_lat=2, n_lon=2, n_depth=2)
        counts = np.zeros(mesh.shape, dtype=np.int64)
        counts[0, 0, 0] = 5
        counts[0, 1, 1] = 1
        frac = coverage_by_depth(counts, mesh)
        np.testing.assert_allclose(frac, [0.5, 0.0])

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            coverage_by_depth(np.zeros((1, 1, 1)), EarthMesh())
