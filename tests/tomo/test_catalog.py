"""Tests for the synthetic seismic catalog generator."""

import numpy as np
import pytest

from repro.tomo import (
    CATALOG_DTYPE,
    PAPER_CATALOG_SIZE,
    generate_catalog,
    generate_stations,
)


class TestStations:
    def test_shape_and_ranges(self):
        st = generate_stations(100, seed=1)
        assert st.shape == (100, 2)
        assert (np.abs(st[:, 0]) <= 85.0).all()
        assert (np.abs(st[:, 1]) <= 180.0).all()

    def test_deterministic(self):
        np.testing.assert_array_equal(
            generate_stations(50, seed=2), generate_stations(50, seed=2)
        )

    def test_northern_bias(self):
        st = generate_stations(2000, seed=3)
        assert st[:, 0].mean() > 10.0

    def test_needs_at_least_one(self):
        with pytest.raises(ValueError):
            generate_stations(0)


class TestCatalog:
    def test_dtype_and_size(self):
        cat = generate_catalog(1000, seed=4)
        assert cat.dtype == CATALOG_DTYPE
        assert len(cat) == 1000

    def test_paper_default_size(self):
        assert PAPER_CATALOG_SIZE == 817_101

    def test_deterministic(self):
        a = generate_catalog(500, seed=5)
        b = generate_catalog(500, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_content(self):
        a = generate_catalog(500, seed=5)
        b = generate_catalog(500, seed=6)
        assert not np.array_equal(a, b)

    def test_coordinate_ranges(self):
        cat = generate_catalog(5000, seed=7)
        assert (np.abs(cat["src_lat"]) <= 90.0).all()
        assert (np.abs(cat["src_lon"]) <= 180.0).all()
        assert (np.abs(cat["sta_lat"]) <= 90.0).all()

    def test_depths_truncated_exponential(self):
        cat = generate_catalog(20_000, seed=8)
        d = cat["depth_km"]
        assert (d >= 0).all() and (d <= 700.0).all()
        assert 40.0 < d.mean() < 80.0  # mean ~60 km
        assert (d < 70.0).mean() > 0.5  # shallow events dominate

    def test_clustering_shows_structure(self):
        """Belt epicenters concentrate: compare to a uniform sphere via a
        coarse lat-lon histogram (clustered max bin much fuller)."""
        cat = generate_catalog(30_000, seed=9, clustered_fraction=0.95)
        H, *_ = np.histogram2d(cat["src_lat"], cat["src_lon"], bins=(18, 36))
        uniform = generate_catalog(30_000, seed=9, clustered_fraction=0.0)
        Hu, *_ = np.histogram2d(uniform["src_lat"], uniform["src_lon"], bins=(18, 36))
        assert H.max() > 3 * Hu.max()

    def test_stations_reused(self):
        cat = generate_catalog(2000, seed=10)
        unique = np.unique(np.stack([cat["sta_lat"], cat["sta_lon"]], axis=1), axis=0)
        assert len(unique) <= 240  # default network size

    def test_custom_stations(self):
        st = np.array([[0.0, 0.0], [10.0, 10.0]])
        cat = generate_catalog(100, seed=11, stations=st)
        assert set(np.unique(cat["sta_lat"])) <= {0.0, 10.0}

    def test_phase_all_p(self):
        cat = generate_catalog(100, seed=12)
        assert (cat["phase"] == 0).all()

    def test_zero_size(self):
        assert len(generate_catalog(0, seed=13)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_catalog(-1)
