"""Tests for the parallel seismic application on the simulated grid."""

import numpy as np
import pytest

from repro.core import LinearCost, uniform_counts
from repro.simgrid import Host, Link, Platform
from repro.tomo import RayTracer, generate_catalog, plan_counts, run_seismic_app


def make_platform():
    plat = Platform("app-test")
    specs = [("fast", 0.002), ("slow", 0.01), ("root", 0.005)]
    for name, alpha in specs:
        plat.add_host(Host(name, LinearCost(alpha)))
    plat.connect("root", "fast", Link.linear(1e-5))
    plat.connect("root", "slow", Link.linear(5e-5))
    plat.connect("fast", "slow", Link.linear(5e-5))
    return plat


HOSTS = ["fast", "slow", "root"]


class TestPlanCounts:
    def test_uniform(self):
        plat = make_platform()
        assert plan_counts(plat, HOSTS, 10, algorithm="uniform") == (4, 3, 3)

    def test_balanced_gives_fast_more(self):
        plat = make_platform()
        counts = plan_counts(plat, HOSTS, 1000)
        assert counts[0] > counts[1]
        assert sum(counts) == 1000

    def test_respects_rank_binding_order(self):
        plat = make_platform()
        a = plan_counts(plat, HOSTS, 500)
        b = plan_counts(plat, ["slow", "fast", "root"], 500)
        assert a[0] == pytest.approx(b[1], abs=2)


class TestRunSeismicApp:
    def test_balanced_beats_uniform(self):
        plat = make_platform()
        uni = run_seismic_app(plat, HOSTS, uniform_counts(1000, 3))
        bal = run_seismic_app(plat, HOSTS, plan_counts(plat, HOSTS, 1000))
        assert bal.makespan < uni.makespan
        assert bal.imbalance < uni.imbalance

    def test_makespan_matches_analytic_model(self):
        """The simulated run must land exactly on Eq. 2 (no gather)."""
        plat = make_platform()
        counts = (400, 100, 500)
        res = run_seismic_app(plat, HOSTS, counts)
        problem = plat.to_problem(1000, "root", order=HOSTS[:-1])
        assert res.makespan == pytest.approx(problem.makespan(list(counts)))
        for sim_t, model_t in zip(res.finish_times, problem.finish_times(list(counts))):
            assert sim_t == pytest.approx(model_t)

    def test_counts_must_match_hosts(self):
        plat = make_platform()
        with pytest.raises(ValueError, match="same length"):
            run_seismic_app(plat, HOSTS, (1, 2))

    def test_catalog_size_checked(self):
        plat = make_platform()
        cat = generate_catalog(10, seed=1)
        with pytest.raises(ValueError, match="rays"):
            run_seismic_app(plat, HOSTS, (5, 5, 5), catalog=cat)

    def test_tracer_requires_catalog(self):
        plat = make_platform()
        with pytest.raises(ValueError, match="catalog"):
            run_seismic_app(plat, HOSTS, (1, 1, 1), tracer=RayTracer(n_p=64, n_r=256, n_delta=64))

    def test_real_compute_produces_travel_times(self):
        plat = make_platform()
        cat = generate_catalog(30, seed=2)
        tracer = RayTracer(n_p=128, n_r=512, n_delta=128)
        res = run_seismic_app(
            plat, HOSTS, (10, 10, 10), catalog=cat, tracer=tracer, gather=True
        )
        assert res.gathered is not None
        all_times = np.concatenate([np.asarray(x) for x in res.gathered])
        expected = tracer.trace_catalog(cat)
        np.testing.assert_allclose(np.sort(all_times), np.sort(expected))

    def test_gather_extends_duration(self):
        plat = make_platform()
        cat = generate_catalog(60, seed=3)
        tracer = RayTracer(n_p=128, n_r=512, n_delta=128)
        plain = run_seismic_app(plat, HOSTS, (20, 20, 20))
        gathered = run_seismic_app(
            plat, HOSTS, (20, 20, 20), catalog=cat, tracer=tracer, gather=True
        )
        assert gathered.makespan > plain.makespan

    def test_zero_count_rank_stays_idle(self):
        plat = make_platform()
        res = run_seismic_app(plat, HOSTS, (0, 0, 100))
        assert res.finish_times[0] == 0.0
        assert res.comm_times[0] == 0.0

    def test_weightless_standin_matches_catalog_timing(self):
        plat = make_platform()
        counts = (300, 200, 500)
        cat = generate_catalog(1000, seed=4)
        light = run_seismic_app(plat, HOSTS, counts)
        heavy = run_seismic_app(plat, HOSTS, counts, catalog=cat)
        assert light.makespan == pytest.approx(heavy.makespan)
