"""Tests for weighted rays in the seismic application."""

import numpy as np
import pytest

from repro.tomo import (
    generate_catalog,
    plan_counts,
    plan_weighted_counts,
    ray_weights,
    run_seismic_app,
)
from repro.workloads import table1_platform, table1_rank_hosts


@pytest.fixture(scope="module")
def setup():
    plat = table1_platform()
    hosts = table1_rank_hosts()
    cat = generate_catalog(8000, seed=21)
    return plat, hosts, cat, ray_weights(cat)


class TestRayWeights:
    def test_normalized_mean(self, setup):
        *_, w = setup
        assert w.mean() == pytest.approx(1.0)
        assert (w > 0).all()

    def test_distance_monotone(self):
        """A farther ray must weigh more than a nearer one."""
        cat = generate_catalog(2, seed=1)
        cat["src_lat"], cat["src_lon"] = [0.0, 0.0], [0.0, 0.0]
        cat["sta_lat"] = [0.0, 0.0]
        cat["sta_lon"] = [5.0, 120.0]
        w = ray_weights(cat)
        assert w[1] > w[0]

    def test_base_raises_floor(self):
        cat = generate_catalog(100, seed=2)
        heavy_base = ray_weights(cat, base=10.0)
        light_base = ray_weights(cat, base=0.01)
        assert heavy_base.std() < light_base.std()


class TestWeightedApp:
    def test_weight_aware_plan_beats_blind(self, setup):
        plat, hosts, cat, w = setup
        blind = run_seismic_app(
            plat, hosts, plan_counts(plat, hosts, len(w)), weights=w
        )
        aware = run_seismic_app(
            plat, hosts, plan_weighted_counts(plat, hosts, w), weights=w
        )
        assert aware.makespan <= blind.makespan
        assert aware.imbalance < blind.imbalance

    def test_weighted_run_matches_model(self, setup):
        """Simulated finish times must equal the WeightedScatterProblem
        evaluation (count-mode comm, weight-mode compute)."""
        from repro.core import WeightedScatterProblem

        plat, hosts, cat, w = setup
        counts = plan_weighted_counts(plat, hosts, w)
        res = run_seismic_app(plat, hosts, counts, weights=w)
        base = plat.to_problem(len(w), hosts[-1], order=list(hosts[:-1]))
        model = WeightedScatterProblem(base.processors, w, comm_mode="count")
        for sim_t, model_t in zip(res.finish_times, model.finish_times(counts)):
            assert sim_t == pytest.approx(model_t, rel=1e-9)

    def test_weights_length_checked(self, setup):
        plat, hosts, cat, w = setup
        with pytest.raises(ValueError, match="weights"):
            run_seismic_app(plat, hosts, plan_counts(plat, hosts, 100),
                            weights=w[:50])

    def test_dp_variant_accepted(self, setup):
        plat, hosts, cat, w = setup
        small = w[:300]
        counts = plan_weighted_counts(plat, hosts, small, algorithm="dp")
        assert sum(counts) == 300

    def test_unknown_algorithm(self, setup):
        plat, hosts, cat, w = setup
        with pytest.raises(ValueError, match="unknown weighted"):
            plan_weighted_counts(plat, hosts, w[:10], algorithm="magic")
