"""Tests for the layered Earth model."""

import numpy as np
import pytest

from repro.tomo import Layer, LayeredEarth, simplified_iasp91
from repro.tomo.geometry import EARTH_RADIUS_KM


class TestLayer:
    def test_velocity_interpolation(self):
        l = Layer("x", 0.0, 100.0, 10.0, 20.0)
        np.testing.assert_allclose(l.velocity(np.array([0.0, 50.0, 100.0])), [10, 15, 20])

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Layer("x", 100.0, 100.0, 1.0, 1.0)

    def test_invalid_velocity(self):
        with pytest.raises(ValueError):
            Layer("x", 0.0, 1.0, -1.0, 1.0)


class TestLayeredEarth:
    def test_contiguity_enforced(self):
        with pytest.raises(ValueError, match="gap"):
            LayeredEarth(
                [Layer("a", 0, 100, 5, 5), Layer("b", 150, 200, 5, 5)]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LayeredEarth([])

    def test_layers_sorted(self):
        earth = LayeredEarth(
            [Layer("top", 100, 200, 5, 4), Layer("bottom", 0, 100, 7, 6)]
        )
        assert [l.name for l in earth.layers] == ["bottom", "top"]
        assert earth.radius == 200.0

    def test_velocity_continuous_inside_layers(self):
        earth = simplified_iasp91()
        r = np.linspace(3500, 5600, 500)  # inside the lower mantle
        v = earth.velocity(r)
        assert (np.abs(np.diff(v)) < 0.05).all()

    def test_velocity_discontinuity_at_cmb(self):
        earth = simplified_iasp91()
        v_above = earth.velocity(np.array([3482.5]))[0]
        v_below = earth.velocity(np.array([3481.5]))[0]
        assert v_above - v_below > 3.0  # the CMB jump (13.66 vs 8.01)

    def test_velocity_clipped_outside(self):
        earth = simplified_iasp91()
        assert earth.velocity(np.array([1e9]))[0] == pytest.approx(
            earth.velocity(np.array([earth.radius]))[0]
        )

    def test_eta_is_r_over_v(self):
        earth = simplified_iasp91()
        r = np.array([5000.0])
        assert earth.slowness_eta(r)[0] == pytest.approx(
            5000.0 / earth.velocity(r)[0]
        )

    def test_sample_radii_monotone_and_covering(self):
        earth = simplified_iasp91()
        radii = earth.sample_radii(1024)
        assert (np.diff(radii) > 0).all()
        assert radii[0] == pytest.approx(0.0)
        assert radii[-1] == pytest.approx(earth.radius)


class TestSimplifiedIasp91:
    def test_surface_radius(self):
        assert simplified_iasp91().radius == pytest.approx(EARTH_RADIUS_KM)

    def test_six_layers(self):
        assert len(simplified_iasp91().layers) == 6

    def test_crustal_velocity_realistic(self):
        earth = simplified_iasp91()
        v = earth.velocity(np.array([earth.radius - 1.0]))[0]
        assert 5.5 < v < 7.0

    def test_core_velocities_realistic(self):
        earth = simplified_iasp91()
        assert 10.5 < earth.velocity(np.array([600.0]))[0] < 11.5  # inner core
        assert 8.0 <= earth.velocity(np.array([3000.0]))[0] < 10.5  # outer core
