"""Tests for the spherical geometry layer."""

import numpy as np
import pytest

from repro.tomo import (
    EARTH_RADIUS_KM,
    epicentral_distance,
    epicentral_distance_deg,
    latlon_to_unit_vectors,
)


class TestUnitVectors:
    def test_north_pole(self):
        v = latlon_to_unit_vectors(90.0, 0.0)
        np.testing.assert_allclose(v, [0.0, 0.0, 1.0], atol=1e-12)

    def test_equator_prime_meridian(self):
        v = latlon_to_unit_vectors(0.0, 0.0)
        np.testing.assert_allclose(v, [1.0, 0.0, 0.0], atol=1e-12)

    def test_unit_norm_vectorized(self):
        rng = np.random.default_rng(0)
        lat = rng.uniform(-90, 90, 100)
        lon = rng.uniform(-180, 180, 100)
        v = latlon_to_unit_vectors(lat, lon)
        assert v.shape == (100, 3)
        np.testing.assert_allclose(np.linalg.norm(v, axis=1), 1.0, atol=1e-12)


class TestEpicentralDistance:
    def test_coincident_points(self):
        assert epicentral_distance(12.0, 34.0, 12.0, 34.0) == pytest.approx(0.0)

    def test_antipodal(self):
        d = epicentral_distance(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(np.pi)

    def test_quarter_circle(self):
        d = epicentral_distance(0.0, 0.0, 90.0, 0.0)
        assert d == pytest.approx(np.pi / 2)

    def test_symmetry(self):
        a = epicentral_distance(10.0, 20.0, -35.0, 140.0)
        b = epicentral_distance(-35.0, 140.0, 10.0, 20.0)
        assert a == pytest.approx(b)

    def test_matches_dot_product_formula(self):
        rng = np.random.default_rng(1)
        lat1, lon1 = rng.uniform(-90, 90, 50), rng.uniform(-180, 180, 50)
        lat2, lon2 = rng.uniform(-90, 90, 50), rng.uniform(-180, 180, 50)
        hav = epicentral_distance(lat1, lon1, lat2, lon2)
        v1 = latlon_to_unit_vectors(lat1, lon1)
        v2 = latlon_to_unit_vectors(lat2, lon2)
        dots = np.clip(np.sum(v1 * v2, axis=1), -1.0, 1.0)
        np.testing.assert_allclose(hav, np.arccos(dots), atol=1e-9)

    def test_degrees_variant(self):
        assert epicentral_distance_deg(0.0, 0.0, 0.0, 90.0) == pytest.approx(90.0)

    def test_range(self):
        rng = np.random.default_rng(2)
        d = epicentral_distance(
            rng.uniform(-90, 90, 200),
            rng.uniform(-180, 180, 200),
            rng.uniform(-90, 90, 200),
            rng.uniform(-180, 180, 200),
        )
        assert (d >= 0).all() and (d <= np.pi + 1e-12).all()


def test_earth_radius_constant():
    assert EARTH_RADIUS_KM == pytest.approx(6371.0)
