"""Tests for the first-arrival tables (p and turning radius vs distance)."""

import numpy as np
import pytest

from repro.tomo import RayTracer


@pytest.fixture(scope="module")
def tracer():
    return RayTracer(n_p=256, n_r=1024, n_delta=512)


class TestFirstArrivalTables:
    def test_shapes_consistent(self, tracer):
        grid, t, p, r = tracer.first_arrival_tables()
        assert grid.shape == t.shape == p.shape == r.shape

    def test_cached_with_travel_time_curve(self, tracer):
        grid1, t1 = tracer.travel_time_curve()
        grid2, t2, *_ = tracer.first_arrival_tables()
        np.testing.assert_array_equal(t1, t2)

    def test_ray_parameter_positive_at_teleseismic_range(self, tracer):
        _, _, p, _ = tracer.first_arrival_tables()
        grid = tracer.first_arrival_tables()[0]
        mid = (grid > np.deg2rad(20)) & (grid < np.deg2rad(90))
        assert (p[mid] > 0).all()

    def test_turning_radius_within_earth(self, tracer):
        _, _, _, r = tracer.first_arrival_tables()
        assert (r >= 0).all()
        assert (r <= tracer.earth.radius).all()

    def test_deeper_turning_with_distance(self, tracer):
        """Farther first arrivals bottom deeper (mantle branch trend)."""
        d = np.deg2rad(np.array([10.0, 30.0, 60.0, 90.0]))
        r = tracer.turning_radii(d)
        assert r[0] > r[1] > r[2] > r[3]

    def test_teleseismic_bottoms_in_lower_mantle(self, tracer):
        r90 = tracer.turning_radii(np.deg2rad([90.0]))[0]
        assert 3400.0 < r90 < 5000.0  # above the CMB, well below 660 km

    def test_local_stays_in_upper_mantle(self, tracer):
        r5 = tracer.turning_radii(np.deg2rad([5.0]))[0]
        assert r5 > tracer.earth.radius - 700.0

    def test_turning_radii_vectorized(self, tracer):
        d = np.deg2rad(np.linspace(5, 100, 40))
        batch = tracer.turning_radii(d)
        singles = [tracer.turning_radii(np.array([x]))[0] for x in d]
        np.testing.assert_allclose(batch, singles)

    def test_branch_turning_radius_increases_with_p(self, tracer):
        """Shallower turning for more grazing rays, within the mantle."""
        c = tracer.branch_curves()
        mantle = c.turning_radius > 3600.0
        r = c.turning_radius[mantle]
        # p is ascending by construction; r must be non-decreasing in p.
        assert (np.diff(r) >= -1e-9).all()
