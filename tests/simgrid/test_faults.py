"""Tests for the fault-injection layer (``repro.simgrid.faults``)."""

import math

import pytest

from repro.core import LinearCost
from repro.simgrid import (
    TIMEOUT,
    Acquire,
    FaultPlan,
    Get,
    Hold,
    Host,
    HostFailure,
    Link,
    LinkDegradation,
    LinkFailure,
    LinkOutage,
    Network,
    NoiseModel,
    Platform,
    Put,
    Release,
    Simulator,
    schedule_host_faults,
    seeded_unit,
)


def make_platform(p=3):
    plat = Platform("faults-test")
    for i in range(p):
        plat.add_host(Host(f"h{i}", LinearCost(0.01)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(0.001))
    return plat


class TestFaultPlanQueries:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.empty
        assert plan.host_alive("x", 1e9)
        assert not plan.link_down("a", "b", 5.0)
        assert plan.link_slowdown("a", "b", 5.0) == 1.0
        assert plan.transfer_failure_time("a", "b", 0.0, 10.0) is None

    def test_crash_and_recovery_windows(self):
        plan = FaultPlan().crash("h1", at=2.0).recover("h1", at=5.0)
        assert plan.host_alive("h1", 1.9)
        assert not plan.host_alive("h1", 2.0)
        assert not plan.host_alive("h1", 4.9)
        assert plan.host_alive("h1", 5.0)
        assert plan.host_alive("h2", 3.0)

    def test_link_outage_symmetry(self):
        plan = FaultPlan().link_outage("a", "b", start=1.0, end=2.0)
        assert plan.link_down("a", "b", 1.5)
        assert plan.link_down("b", "a", 1.5)  # symmetric by default
        asym = FaultPlan().link_outage("a", "b", 1.0, 2.0, symmetric=False)
        assert asym.link_down("a", "b", 1.5)
        assert not asym.link_down("b", "a", 1.5)

    def test_degradation_window(self):
        plan = FaultPlan().degrade("a", "b", start=1.0, end=2.0, slowdown=3.0)
        assert plan.link_slowdown("a", "b", 1.5) == 3.0
        assert plan.link_slowdown("a", "b", 2.5) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().crash("h", at=-1.0)
        with pytest.raises(ValueError):
            LinkOutage("a", "b", start=2.0, end=1.0)
        with pytest.raises(ValueError):
            LinkDegradation("a", "b", start=0.0, end=1.0, slowdown=0.5)
        with pytest.raises(ValueError):
            FaultPlan().recover("h", at=-0.5)

    def test_round_trip_serialization(self):
        plan = (
            FaultPlan(seed=42)
            .crash("h1", at=2.0)
            .recover("h1", at=5.0)
            .link_outage("a", "b", 1.0, 2.0, symmetric=False)
            .degrade("a", "c", 0.0, 4.0, slowdown=2.5)
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        assert clone.seed == 42
        assert not clone.host_alive("h1", 3.0)
        assert clone.link_down("a", "b", 1.5)

    def test_backoff_jitter_deterministic(self):
        a = FaultPlan(seed=7)
        b = FaultPlan(seed=7)
        assert a.backoff_jitter("x", "y", 0) == b.backoff_jitter("x", "y", 0)
        assert a.backoff_jitter("x", "y", 0) != a.backoff_jitter("x", "y", 1)
        assert FaultPlan(seed=8).backoff_jitter("x", "y", 0) != a.backoff_jitter(
            "x", "y", 0
        )


class TestProcessKill:
    def test_killed_process_reports_failure(self):
        sim = Simulator()

        def worker():
            yield Hold(100.0)
            return "never"

        proc = sim.spawn("w", worker())
        failure = HostFailure("hw", 1.0)
        sim.schedule(1.0, proc.kill, failure)
        sim.run()
        assert proc.killed
        assert proc.done.value is failure

    def test_kill_releases_held_resources(self):
        sim = Simulator()
        res = sim.resource("port")
        order = []

        def holder():
            yield Acquire(res)
            order.append("holder-acquired")
            yield Hold(100.0)

        def waiter():
            yield Acquire(res)
            order.append("waiter-acquired")
            yield Release(res)

        p1 = sim.spawn("holder", holder())
        sim.spawn("waiter", waiter())
        sim.schedule(1.0, p1.kill, HostFailure("h", 1.0))
        sim.run()
        # The kill released the port, so the waiter got it (no deadlock).
        assert order == ["holder-acquired", "waiter-acquired"]

    def test_kill_runs_finally_blocks(self):
        sim = Simulator()
        cleaned = []

        def worker():
            try:
                yield Hold(100.0)
            finally:
                cleaned.append(True)

        proc = sim.spawn("w", worker())
        sim.schedule(1.0, proc.kill)
        sim.run()
        assert cleaned == [True]

    def test_schedule_host_faults_kills_at_crash_time(self):
        sim = Simulator()
        times = {}

        def worker(name):
            yield Hold(100.0)
            times[name] = sim.now

        p0 = sim.spawn("r0", worker("r0"))
        p1 = sim.spawn("r1", worker("r1"))
        plan = FaultPlan().crash("hB", at=3.0)
        schedule_host_faults(sim, plan, {"hA": [p0], "hB": [p1]})
        sim.run()
        assert times == {"r0": 100.0}
        assert isinstance(p1.done.value, HostFailure)
        assert p1.done.value.time == 3.0


class TestGetTimeout:
    def test_timeout_returns_sentinel_at_deadline(self):
        sim = Simulator()
        box = sim.mailbox("m")
        got = []

        def receiver():
            msg = yield Get(box, timeout=2.5)
            got.append((sim.now, msg))

        sim.spawn("r", receiver())
        sim.run()
        assert got == [(2.5, TIMEOUT)]

    def test_message_beats_timeout_and_cancels_timer(self):
        sim = Simulator()
        box = sim.mailbox("m")
        got = []

        def receiver():
            msg = yield Get(box, timeout=50.0)
            got.append((sim.now, msg))

        def sender():
            yield Hold(1.0)
            yield Put(box, "hello")

        sim.spawn("r", receiver())
        sim.spawn("s", sender())
        duration = sim.run()
        assert got == [(1.0, "hello")]
        # The satisfied wait's timer was cancelled: the run ends at the
        # delivery, not at the stale 50 s deadline.
        assert duration == 1.0

    def test_stale_timer_cannot_expire_a_later_wait(self):
        sim = Simulator()
        box = sim.mailbox("m")
        got = []

        def receiver():
            first = yield Get(box, timeout=2.0)
            second = yield Get(box, timeout=100.0)
            got.append((first, second, sim.now))

        def sender():
            yield Hold(1.0)
            yield Put(box, "a")
            yield Hold(2.0)
            yield Put(box, "b")

        sim.spawn("r", receiver())
        sim.spawn("s", sender())
        sim.run()
        # The first wait's 2 s timer must not hit the second wait.
        assert got == [("a", "b", 3.0)]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        box = sim.mailbox("m")

        def receiver():
            yield Get(box, timeout=-1.0)

        sim.spawn("r", receiver())
        with pytest.raises(ValueError, match="negative receive timeout"):
            sim.run()


class TestNetworkFaults:
    def run_send(self, faults, *, items=1000, at=0.0):
        plat = make_platform()
        sim = Simulator()
        net = Network(sim, plat, faults=faults)
        box = sim.mailbox("m")
        outcome = {}

        def sender():
            yield Hold(at)
            try:
                yield from net.send("h0", "h1", items, "payload", box)
                outcome["ok"] = sim.now
            except LinkFailure as exc:
                outcome["failure"] = exc

        def receiver():
            msg = yield Get(box, timeout=1e6)
            outcome["received"] = msg

        sim.spawn("s", sender())
        sim.spawn("r", receiver())
        sim.run()
        return outcome

    def test_outage_interrupts_transfer(self):
        faults = FaultPlan().link_outage("h0", "h1", start=0.5, end=2.0)
        outcome = self.run_send(faults, items=1000)  # would take 1.0 s
        exc = outcome["failure"]
        assert isinstance(exc, LinkFailure)
        assert exc.time == 0.5
        assert "h0" in str(exc) and "h1" in str(exc)
        assert outcome["received"] is TIMEOUT

    def test_dead_destination_fails_the_send(self):
        faults = FaultPlan().crash("h1", at=0.25)
        outcome = self.run_send(faults, items=1000)
        exc = outcome["failure"]
        assert isinstance(exc, LinkFailure)
        assert exc.time == 0.25
        assert "dead" in str(exc)

    def test_degradation_stretches_transfer(self):
        faults = FaultPlan().degrade("h0", "h1", 0.0, 10.0, slowdown=2.0)
        outcome = self.run_send(faults, items=1000)
        assert outcome["ok"] == pytest.approx(2.0)  # 2x the fault-free 1.0 s

    def test_transfer_after_outage_succeeds(self):
        faults = FaultPlan().link_outage("h0", "h1", start=0.5, end=2.0)
        outcome = self.run_send(faults, items=1000, at=2.5)
        assert outcome["ok"] == pytest.approx(3.5)
        assert outcome["received"].payload == "payload"


class TestNoiseValidation:
    def test_bogus_noise_factor_fails_loudly(self):
        class Bogus(NoiseModel):
            def factor(self, host, time):
                return 0.5  # a speed-up: invalid

        host = Host("h", LinearCost(0.01), noise=Bogus())
        with pytest.raises(ValueError, match="invalid factor"):
            host.compute_time(100, at=0.0)

    def test_nan_and_inf_rejected(self):
        class Evil(NoiseModel):
            def __init__(self, value):
                self.value = value

            def factor(self, host, time):
                return self.value

        for bad in (math.nan, math.inf):
            host = Host("h", LinearCost(0.01), noise=Evil(bad))
            with pytest.raises(ValueError, match="invalid factor"):
                host.compute_time(100, at=0.0)


class TestDiagnostics:
    def test_deadlock_message_names_time_and_primitive(self):
        sim = Simulator()
        box = sim.mailbox("lonely")

        def starved():
            yield Hold(4.0)
            yield Get(box)

        sim.spawn("starved", starved())
        with pytest.raises(RuntimeError) as err:
            sim.run()
        msg = str(err.value)
        assert "t=4" in msg
        assert "starved" in msg
        assert "lonely" in msg  # the mailbox it is blocked on


class TestSeededUnit:
    def test_range_and_determinism(self):
        vals = [seeded_unit(1, "k", i) for i in range(100)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert vals == [seeded_unit(1, "k", i) for i in range(100)]
        assert len(set(vals)) == 100  # no accidental collisions
