"""Tests for the discrete-event engine."""

import pytest

from repro.simgrid import (
    Acquire,
    DeadlockError,
    Get,
    Hold,
    Put,
    Release,
    Simulator,
    WaitFor,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_equal_times_fire_in_creation_order(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.schedule(1.0, log.append, tag)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        assert sim.run() == 5.0
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        log = []
        ev = sim.schedule(1.0, log.append, "x")
        sim.cancel(ev)
        sim.run()
        assert log == []

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "early")
        sim.schedule(10.0, log.append, "late")
        sim.run(until=5.0)
        assert log == ["early"]
        assert sim.now == 5.0
        sim.run()  # continue to completion
        assert log == ["early", "late"]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(2.0, inner)

        def inner():
            log.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 3.0)]


class TestProcesses:
    def test_hold_advances_time(self):
        sim = Simulator()
        marks = []

        def proc():
            yield Hold(2.5)
            marks.append(sim.now)
            yield Hold(1.5)
            marks.append(sim.now)

        sim.spawn("p", proc())
        sim.run()
        assert marks == [2.5, 4.0]

    def test_return_value_lands_in_done(self):
        sim = Simulator()

        def proc():
            yield Hold(1.0)
            return 42

        p = sim.spawn("p", proc())
        sim.run()
        assert p.done.is_set
        assert p.done.value == 42

    def test_negative_hold_rejected(self):
        sim = Simulator()

        def proc():
            yield Hold(-1.0)

        sim.spawn("p", proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_bad_yield_type(self):
        sim = Simulator()

        def proc():
            yield "not a primitive"

        sim.spawn("p", proc())
        with pytest.raises(TypeError, match="primitive"):
            sim.run()

    def test_waitfor_event(self):
        sim = Simulator()
        ev = None
        got = []

        def waiter():
            value = yield WaitFor(ev)
            got.append((sim.now, value))

        def setter():
            yield Hold(3.0)
            ev.set("ping")

        ev = sim.event("e")
        sim.spawn("w", waiter())
        sim.spawn("s", setter())
        sim.run()
        assert got == [(3.0, "ping")]

    def test_waitfor_already_set(self):
        sim = Simulator()
        ev = sim.event()
        ev.set("x")
        got = []

        def proc():
            v = yield WaitFor(ev)
            got.append(v)

        sim.spawn("p", proc())
        sim.run()
        assert got == ["x"]

    def test_event_set_twice_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.set()
        with pytest.raises(RuntimeError, match="twice"):
            ev.set()


class TestResources:
    def test_fifo_mutual_exclusion(self):
        sim = Simulator()
        res = sim.resource("r")
        order = []

        def worker(name, work):
            yield Acquire(res)
            order.append((name, sim.now))
            yield Hold(work)
            yield Release(res)

        sim.spawn("a", worker("a", 2.0))
        sim.spawn("b", worker("b", 3.0))
        sim.spawn("c", worker("c", 1.0))
        sim.run()
        # FIFO: a at 0, b at 2, c at 5.
        assert order == [("a", 0.0), ("b", 2.0), ("c", 5.0)]

    def test_release_by_non_holder_rejected(self):
        sim = Simulator()
        res = sim.resource("r")

        def holder():
            yield Acquire(res)
            yield Hold(10.0)
            yield Release(res)

        def thief():
            yield Hold(1.0)
            yield Release(res)

        sim.spawn("h", holder())
        sim.spawn("t", thief())
        with pytest.raises(RuntimeError, match="released"):
            sim.run()


class TestMailboxes:
    def test_put_then_get(self):
        sim = Simulator()
        mbox = sim.mailbox()
        got = []

        def producer():
            yield Hold(1.0)
            yield Put(mbox, "msg")

        def consumer():
            v = yield Get(mbox)
            got.append((sim.now, v))

        sim.spawn("p", producer())
        sim.spawn("c", consumer())
        sim.run()
        assert got == [(1.0, "msg")]

    def test_get_before_put_blocks(self):
        sim = Simulator()
        mbox = sim.mailbox()
        got = []

        def consumer():
            v = yield Get(mbox)
            got.append(sim.now)

        def producer():
            yield Hold(4.0)
            yield Put(mbox, 1)

        sim.spawn("c", consumer())
        sim.spawn("p", producer())
        sim.run()
        assert got == [4.0]

    def test_fifo_message_order(self):
        sim = Simulator()
        mbox = sim.mailbox()
        got = []

        def producer():
            yield Put(mbox, 1)
            yield Put(mbox, 2)
            yield Put(mbox, 3)

        def consumer():
            for _ in range(3):
                got.append((yield Get(mbox)))

        sim.spawn("p", producer())
        sim.spawn("c", consumer())
        sim.run()
        assert got == [1, 2, 3]

    def test_len(self):
        sim = Simulator()
        mbox = sim.mailbox()

        def producer():
            yield Put(mbox, "a")

        sim.spawn("p", producer())
        sim.run()
        assert len(mbox) == 1


class TestDeadlockDetection:
    def test_unmatched_get_deadlocks(self):
        sim = Simulator()
        mbox = sim.mailbox()

        def consumer():
            yield Get(mbox)

        sim.spawn("starved", consumer())
        with pytest.raises(DeadlockError, match="starved"):
            sim.run()

    def test_resource_hold_forever_deadlocks_waiter(self):
        sim = Simulator()
        res = sim.resource()

        def hog():
            yield Acquire(res)
            # never releases, process ends while holding -> waiter starves

        def waiter():
            yield Hold(1.0)
            yield Acquire(res)

        sim.spawn("hog", hog())
        sim.spawn("waiter", waiter())
        with pytest.raises(DeadlockError, match="waiter"):
            sim.run()

    def test_run_until_does_not_raise(self):
        sim = Simulator()
        mbox = sim.mailbox()

        def consumer():
            yield Get(mbox)

        sim.spawn("c", consumer())
        sim.run(until=10.0)  # no deadlock error with a horizon
