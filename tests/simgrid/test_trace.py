"""Tests for timelines and stair-effect metrics."""

import pytest

from repro.simgrid import Interval, Timeline, TraceRecorder


class TestInterval:
    def test_duration(self):
        assert Interval("computing", 1.0, 3.5).duration == 2.5

    def test_unknown_state(self):
        with pytest.raises(ValueError, match="unknown state"):
            Interval("sleeping", 0.0, 1.0)

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            Interval("idle", 2.0, 1.0)

    def test_zero_length_ok(self):
        assert Interval("receiving", 1.0, 1.0).duration == 0.0


class TestTimeline:
    def make(self):
        tl = Timeline("w")
        tl.add("receiving", 1.0, 2.0)
        tl.add("computing", 2.0, 10.0)
        tl.add("sending", 10.0, 10.5)
        return tl

    def test_time_in(self):
        tl = self.make()
        assert tl.time_in("computing") == 8.0
        assert tl.time_in("receiving") == 1.0
        assert tl.time_in("idle") == 0.0

    def test_finish_time(self):
        assert self.make().finish_time == 10.5

    def test_finish_time_empty(self):
        assert Timeline("empty").finish_time == 0.0

    def test_comm_time_sums_both_directions(self):
        assert self.make().comm_time == 1.5

    def test_first_receive_start(self):
        assert self.make().first_receive_start == 1.0
        assert Timeline("x").first_receive_start is None

    def test_receive_end(self):
        assert self.make().receive_end == 2.0

    def test_state_at(self):
        tl = self.make()
        assert tl.state_at(0.5) == "idle"
        assert tl.state_at(1.5) == "receiving"
        assert tl.state_at(5.0) == "computing"
        assert tl.state_at(10.2) == "sending"
        assert tl.state_at(99.0) == "idle"


class TestTraceRecorder:
    def make(self):
        rec = TraceRecorder()
        rec.record("a", "receiving", 0.0, 1.0)
        rec.record("a", "computing", 1.0, 5.0)
        rec.record("b", "receiving", 1.0, 3.0)
        rec.record("b", "computing", 3.0, 4.0)
        return rec

    def test_makespan(self):
        assert self.make().makespan == 5.0

    def test_finish_times_ordered(self):
        rec = self.make()
        assert rec.finish_times(["b", "a"]) == [4.0, 5.0]

    def test_imbalance(self):
        rec = self.make()
        assert rec.imbalance(["a", "b"]) == pytest.approx((5.0 - 4.0) / 5.0)

    def test_imbalance_empty(self):
        assert TraceRecorder().imbalance([]) == 0.0

    def test_stair_area(self):
        rec = self.make()
        # a starts receiving at 0, b at 1 -> area 1.
        assert rec.stair_area(["a", "b"]) == 1.0

    def test_stair_area_skips_non_receivers(self):
        rec = self.make()
        rec.record("root", "computing", 0.0, 2.0)
        assert rec.stair_area(["a", "b", "root"]) == 1.0

    def test_ascii_gantt_shape(self):
        rec = self.make()
        out = rec.ascii_gantt(["a", "b"], width=40)
        lines = out.splitlines()
        assert len(lines) == 4  # two rows + scale + legend
        assert "#" in lines[0] and "r" in lines[1]

    def test_ascii_gantt_empty(self):
        out = TraceRecorder().ascii_gantt(["x"])
        assert "no activity" in out

    def test_summary_rows(self):
        rec = self.make()
        rows = rec.summary_rows(["a", "b"])
        assert rows == [("a", 5.0, 1.0), ("b", 4.0, 2.0)]


class TestTraceSerialization:
    def make(self):
        rec = TraceRecorder()
        rec.record("a", "receiving", 0.0, 1.0)
        rec.record("a", "computing", 1.0, 5.0)
        rec.record("b", "sending", 0.5, 2.0)
        return rec

    def test_roundtrip_dict(self):
        rec = self.make()
        restored = TraceRecorder.from_dict(rec.to_dict())
        assert restored.makespan == rec.makespan
        assert restored.timeline("a").comm_time == rec.timeline("a").comm_time
        assert len(restored.timeline("b").intervals) == 1

    def test_roundtrip_file(self, tmp_path):
        rec = self.make()
        path = tmp_path / "trace.json"
        rec.save(str(path))
        restored = TraceRecorder.load(str(path))
        assert restored.summary_rows(["a", "b"]) == rec.summary_rows(["a", "b"])

    def test_empty(self):
        restored = TraceRecorder.from_dict(TraceRecorder().to_dict())
        assert restored.makespan == 0.0
