"""Tests for timelines and stair-effect metrics."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgrid import Interval, Timeline, TraceRecorder


class TestInterval:
    def test_duration(self):
        assert Interval("computing", 1.0, 3.5).duration == 2.5

    def test_unknown_state(self):
        with pytest.raises(ValueError, match="unknown state"):
            Interval("sleeping", 0.0, 1.0)

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            Interval("idle", 2.0, 1.0)

    def test_zero_length_ok(self):
        assert Interval("receiving", 1.0, 1.0).duration == 0.0


class TestTimeline:
    def make(self):
        tl = Timeline("w")
        tl.add("receiving", 1.0, 2.0)
        tl.add("computing", 2.0, 10.0)
        tl.add("sending", 10.0, 10.5)
        return tl

    def test_time_in(self):
        tl = self.make()
        assert tl.time_in("computing") == 8.0
        assert tl.time_in("receiving") == 1.0
        assert tl.time_in("idle") == 0.0

    def test_finish_time(self):
        assert self.make().finish_time == 10.5

    def test_finish_time_empty(self):
        assert Timeline("empty").finish_time == 0.0

    def test_comm_time_sums_both_directions(self):
        assert self.make().comm_time == 1.5

    def test_first_receive_start(self):
        assert self.make().first_receive_start == 1.0
        assert Timeline("x").first_receive_start is None

    def test_receive_end(self):
        assert self.make().receive_end == 2.0

    def test_state_at(self):
        tl = self.make()
        assert tl.state_at(0.5) == "idle"
        assert tl.state_at(1.5) == "receiving"
        assert tl.state_at(5.0) == "computing"
        assert tl.state_at(10.2) == "sending"
        assert tl.state_at(99.0) == "idle"


class TestTraceRecorder:
    def make(self):
        rec = TraceRecorder()
        rec.record("a", "receiving", 0.0, 1.0)
        rec.record("a", "computing", 1.0, 5.0)
        rec.record("b", "receiving", 1.0, 3.0)
        rec.record("b", "computing", 3.0, 4.0)
        return rec

    def test_makespan(self):
        assert self.make().makespan == 5.0

    def test_finish_times_ordered(self):
        rec = self.make()
        assert rec.finish_times(["b", "a"]) == [4.0, 5.0]

    def test_imbalance(self):
        rec = self.make()
        assert rec.imbalance(["a", "b"]) == pytest.approx((5.0 - 4.0) / 5.0)

    def test_imbalance_empty(self):
        assert TraceRecorder().imbalance([]) == 0.0

    def test_stair_area(self):
        rec = self.make()
        # a starts receiving at 0, b at 1 -> area 1.
        assert rec.stair_area(["a", "b"]) == 1.0

    def test_stair_area_skips_non_receivers(self):
        rec = self.make()
        rec.record("root", "computing", 0.0, 2.0)
        assert rec.stair_area(["a", "b", "root"]) == 1.0

    def test_ascii_gantt_shape(self):
        rec = self.make()
        out = rec.ascii_gantt(["a", "b"], width=40)
        lines = out.splitlines()
        assert len(lines) == 4  # two rows + scale + legend
        assert "#" in lines[0] and "r" in lines[1]

    def test_ascii_gantt_empty(self):
        out = TraceRecorder().ascii_gantt(["x"])
        assert "no activity" in out

    def test_summary_rows(self):
        rec = self.make()
        rows = rec.summary_rows(["a", "b"])
        assert rows == [("a", 5.0, 1.0), ("b", 4.0, 2.0)]


class TestCompiledTimeline:
    """Timeline.compiled() must agree with state_at() everywhere."""

    def check_equivalence(self, tl, probes):
        from bisect import bisect_right

        times, states = tl.compiled()
        assert times == sorted(times)
        # consecutive segments never repeat a state (dedup invariant)
        assert all(a != b for a, b in zip(states, states[1:]))
        for t in probes:
            k = bisect_right(times, t) - 1
            compiled = states[k] if k >= 0 else "idle"
            assert compiled == tl.state_at(t), f"disagreement at t={t}"

    def test_empty_timeline(self):
        tl = Timeline("x")
        assert tl.compiled() == ([0.0], ["idle"])

    def test_zero_length_intervals_cover_nothing(self):
        tl = Timeline("x")
        tl.add("receiving", 1.0, 1.0)
        assert tl.compiled() == ([0.0], ["idle"])
        assert tl.state_at(1.0) == "idle"

    def test_half_open_boundaries(self):
        tl = Timeline("x")
        tl.add("receiving", 0.0, 1.0)
        tl.add("computing", 1.0, 2.0)
        self.check_equivalence(tl, [0.0, 0.5, 1.0, 1.5, 2.0, 2.5])

    def test_latest_added_wins_overlaps(self):
        tl = Timeline("x")
        tl.add("computing", 0.0, 10.0)
        tl.add("sending", 2.0, 4.0)  # later-added overlap wins
        self.check_equivalence(tl, [1.0, 2.0, 3.0, 4.0, 5.0, 9.0, 10.0])
        assert tl.state_at(3.0) == "sending"

    def test_random_overlapping_intervals(self):
        states = ("receiving", "sending", "computing", "idle")
        rng = random.Random(0xABBA)
        for _ in range(50):
            tl = Timeline("x")
            for _ in range(rng.randint(0, 12)):
                start = rng.uniform(0, 10)
                end = start + rng.uniform(0, 4) * rng.choice((0, 1))
                tl.add(rng.choice(states), round(start, 2), round(end, 2))
            probes = [rng.uniform(-1, 12) for _ in range(40)]
            probes += [iv.start for iv in tl.intervals]
            probes += [iv.end for iv in tl.intervals]
            self.check_equivalence(tl, probes)


class TestGanttAlignment:
    def make(self):
        rec = TraceRecorder()
        rec.record("a", "computing", 0.0, 5.0)
        rec.record("b", "receiving", 0.0, 2.0)
        return rec

    @pytest.mark.parametrize("width", [1, 4, 8, 16, 40, 72])
    def test_scale_row_matches_row_width(self, width):
        """The scale line must never overhang the rows' closing pipe,
        including at the clamped minimum width (regression: off-by-one
        misalignment at width <= 8)."""
        rec = self.make()
        lines = rec.ascii_gantt(["a", "b"], width=width).splitlines()
        rows, scale = lines[:2], lines[2]
        assert len(scale) <= len(rows[0])
        # the '0' tick sits under the first Gantt column
        first_col = rows[0].index("|") + 1
        assert scale[first_col] == "0"
        # the span label ends at (or before) the last Gantt column
        assert scale.rstrip().endswith("s")

    def test_rows_use_compiled_sampling(self):
        rec = self.make()
        out = rec.ascii_gantt(["a", "b"], width=10)
        rows = out.splitlines()
        assert rows[0].count("#") == 10  # a computes for the whole span
        assert "r" in rows[1] and "." in rows[1]


class TestImbalanceZeroFinish:
    def make(self):
        rec = TraceRecorder()
        rec.record("busy", "computing", 0.0, 10.0)
        rec.record("slow", "computing", 0.0, 8.0)
        rec.timeline("lazy")  # no recorded work: finish time 0
        return rec

    def test_default_excludes_and_counts(self):
        from repro.obs import METRICS

        rec = self.make()
        counter = METRICS.counter("trace.imbalance.zero_finish_excluded")
        before = counter.value
        assert rec.imbalance(["busy", "slow", "lazy"]) == pytest.approx(0.2)
        assert counter.value == before + 1

    def test_include_zero_exposes_idle_rank(self):
        rec = self.make()
        assert rec.imbalance(
            ["busy", "slow", "lazy"], include_zero=True
        ) == pytest.approx(1.0)

    def test_zero_finish_lists_culprits(self):
        rec = self.make()
        assert rec.zero_finish() == ["lazy"]
        assert rec.zero_finish(["busy", "slow"]) == []

    def test_all_zero_include_zero_is_zero(self):
        rec = TraceRecorder()
        rec.timeline("a")
        rec.timeline("b")
        assert rec.imbalance(include_zero=True) == 0.0


_interval_st = st.tuples(
    st.sampled_from(["idle", "receiving", "sending", "computing"]),
    st.floats(min_value=0, max_value=100, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0, max_value=50, allow_nan=False, allow_infinity=False),
)


class TestRecorderRoundTripProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.lists(_interval_st, max_size=8),
            max_size=3,
        )
    )
    def test_to_from_dict_round_trip(self, spec):
        rec = TraceRecorder()
        for name, intervals in spec.items():
            rec.timeline(name)  # empty timelines must survive too
            for state, start, length in intervals:
                rec.record(name, state, start, start + length)
        restored = TraceRecorder.from_dict(rec.to_dict())
        assert restored.to_dict() == rec.to_dict()
        assert sorted(restored.timelines) == sorted(rec.timelines)
        for name in rec.timelines:
            assert restored.timeline(name).intervals == rec.timeline(name).intervals
        assert restored.makespan == rec.makespan


class TestTraceSerialization:
    def make(self):
        rec = TraceRecorder()
        rec.record("a", "receiving", 0.0, 1.0)
        rec.record("a", "computing", 1.0, 5.0)
        rec.record("b", "sending", 0.5, 2.0)
        return rec

    def test_roundtrip_dict(self):
        rec = self.make()
        restored = TraceRecorder.from_dict(rec.to_dict())
        assert restored.makespan == rec.makespan
        assert restored.timeline("a").comm_time == rec.timeline("a").comm_time
        assert len(restored.timeline("b").intervals) == 1

    def test_roundtrip_file(self, tmp_path):
        rec = self.make()
        path = tmp_path / "trace.json"
        rec.save(str(path))
        restored = TraceRecorder.load(str(path))
        assert restored.summary_rows(["a", "b"]) == rec.summary_rows(["a", "b"])

    def test_empty(self):
        restored = TraceRecorder.from_dict(TraceRecorder().to_dict())
        assert restored.makespan == 0.0
