"""Property-based tests on simulator invariants (hypothesis).

Random platforms + random scatter/compute programs, asserting structural
properties that must hold for *any* run: single-port non-overlap, stair
monotonicity, agreement with the analytic Eq. 1 model, and conservation of
scattered items.
"""

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinearCost, uniform_counts
from repro.mpi import run_spmd
from repro.simgrid import Host, Link, Platform


@st.composite
def platforms(draw, max_hosts=6):
    p = draw(st.integers(min_value=2, max_value=max_hosts))
    alphas = [
        draw(st.floats(min_value=1e-4, max_value=0.1, allow_nan=False))
        for _ in range(p)
    ]
    betas = {}
    plat = Platform("hyp")
    for i, a in enumerate(alphas):
        plat.add_host(Host(f"h{i}", LinearCost(a)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            beta = draw(st.floats(min_value=1e-6, max_value=1e-2, allow_nan=False))
            plat.connect(u, v, Link.linear(beta))
            betas[(u, v)] = beta
    return plat


@st.composite
def scatter_cases(draw):
    plat = draw(platforms())
    p = len(plat.host_names)
    n = draw(st.integers(min_value=0, max_value=500))
    # A random (possibly very unbalanced) distribution.
    counts = list(uniform_counts(n, p))
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        i = draw(st.integers(min_value=0, max_value=p - 1))
        j = draw(st.integers(min_value=0, max_value=p - 1))
        move = min(counts[i], draw(st.integers(min_value=0, max_value=50)))
        counts[i] -= move
        counts[j] += move
    return plat, counts


def scatter_program(ctx, counts: List[int], root: int):
    data = range(sum(counts))
    chunk = yield from ctx.scatterv(
        data if ctx.rank == root else None,
        counts if ctx.rank == root else None,
        root,
    )
    yield from ctx.compute(len(chunk))
    return (chunk.start if isinstance(chunk, range) else None, len(chunk))


@given(scatter_cases())
@settings(max_examples=40, deadline=None)
def test_scatter_conserves_items(case):
    plat, counts = case
    hosts = plat.host_names
    run = run_spmd(plat, hosts, scatter_program, counts, len(hosts) - 1)
    assert sum(length for _, length in run.results) == sum(counts)


@given(scatter_cases())
@settings(max_examples=40, deadline=None)
def test_simulation_matches_analytic_model(case):
    """The simulated scatter+compute lands exactly on Eq. 1."""
    plat, counts = case
    hosts = plat.host_names
    root = hosts[-1]
    run = run_spmd(plat, hosts, scatter_program, counts, len(hosts) - 1)
    problem = plat.to_problem(sum(counts), root, order=hosts[:-1])
    model = problem.finish_times(counts)
    for label, c, model_t in zip(run.trace_names, counts, model):
        if c == 0:
            continue  # idle ranks have no trace activity
        sim_t = run.recorder.timeline(label).finish_time
        assert sim_t == pytest.approx(model_t, rel=1e-9, abs=1e-12)


@given(scatter_cases())
@settings(max_examples=40, deadline=None)
def test_single_port_never_overlaps(case):
    """No two 'sending' intervals of the root may overlap (§2.3)."""
    plat, counts = case
    hosts = plat.host_names
    run = run_spmd(plat, hosts, scatter_program, counts, len(hosts) - 1)
    root_tl = run.recorder.timeline(hosts[-1])
    sends = sorted(
        (iv.start, iv.end) for iv in root_tl.intervals if iv.state == "sending"
    )
    for (s1, e1), (s2, e2) in zip(sends, sends[1:]):
        assert e1 <= s2 + 1e-12


@given(scatter_cases())
@settings(max_examples=40, deadline=None)
def test_stair_is_monotone(case):
    """Receive-end times follow rank order (the Fig. 1 stair)."""
    plat, counts = case
    hosts = plat.host_names
    run = run_spmd(plat, hosts, scatter_program, counts, len(hosts) - 1)
    ends = [
        run.recorder.timeline(h).receive_end
        for h, c in zip(hosts[:-1], counts[:-1])
        if c > 0 and run.recorder.timeline(h).receive_end is not None
    ]
    assert ends == sorted(ends)


@given(scatter_cases())
@settings(max_examples=30, deadline=None)
def test_makespan_equals_max_finish(case):
    plat, counts = case
    hosts = plat.host_names
    run = run_spmd(plat, hosts, scatter_program, counts, len(hosts) - 1)
    finishes = [run.recorder.timeline(h).finish_time for h in run.trace_names]
    assert run.duration == pytest.approx(max(finishes), rel=1e-12, abs=1e-12)
