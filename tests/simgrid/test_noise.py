"""Tests for the deterministic noise models."""

import pytest

from repro.simgrid import CompositeNoise, JitterNoise, NoNoise, SpikeNoise


class TestNoNoise:
    def test_identity(self):
        m = NoNoise()
        assert m.factor("any", 0.0) == 1.0
        assert m.factor("other", 1e9) == 1.0


class TestJitterNoise:
    def test_deterministic(self):
        a = JitterNoise(seed=1, amplitude=0.1)
        b = JitterNoise(seed=1, amplitude=0.1)
        assert a.factor("h", 42.0) == b.factor("h", 42.0)

    def test_range(self):
        m = JitterNoise(seed=2, amplitude=0.2)
        for t in range(0, 1000, 37):
            f = m.factor("host", float(t))
            assert 1.0 <= f <= 1.2

    def test_constant_within_bucket(self):
        m = JitterNoise(seed=3, amplitude=0.1, bucket=60.0)
        assert m.factor("h", 0.0) == m.factor("h", 59.9)

    def test_varies_across_buckets(self):
        m = JitterNoise(seed=3, amplitude=0.1, bucket=60.0)
        factors = {m.factor("h", 60.0 * i) for i in range(20)}
        assert len(factors) > 5

    def test_varies_across_hosts(self):
        m = JitterNoise(seed=3, amplitude=0.1)
        assert m.factor("h1", 0.0) != m.factor("h2", 0.0)

    def test_seed_changes_stream(self):
        assert JitterNoise(seed=1).factor("h", 0.0) != JitterNoise(seed=2).factor(
            "h", 0.0
        )


class TestSpikeNoise:
    def test_inside_window(self):
        m = SpikeNoise("sekhmet", 10.0, 20.0, slowdown=2.5)
        assert m.factor("sekhmet", 15.0) == 2.5

    def test_outside_window(self):
        m = SpikeNoise("sekhmet", 10.0, 20.0, slowdown=2.5)
        assert m.factor("sekhmet", 5.0) == 1.0
        assert m.factor("sekhmet", 20.0) == 1.0  # half-open interval

    def test_other_host_unaffected(self):
        m = SpikeNoise("sekhmet", 10.0, 20.0)
        assert m.factor("leda", 15.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SpikeNoise("h", 5.0, 5.0)
        with pytest.raises(ValueError):
            SpikeNoise("h", 0.0, 1.0, slowdown=0.5)


class TestCompositeNoise:
    def test_product(self):
        m = CompositeNoise(
            [SpikeNoise("h", 0.0, 10.0, slowdown=2.0), SpikeNoise("h", 0.0, 5.0, slowdown=3.0)]
        )
        assert m.factor("h", 1.0) == 6.0
        assert m.factor("h", 7.0) == 2.0
        assert m.factor("h", 50.0) == 1.0

    def test_empty_is_identity(self):
        assert CompositeNoise([]).factor("h", 0.0) == 1.0
