"""Tests for platform descriptions and serialization."""

import pytest

from repro.core import AffineCost, LinearCost, PiecewiseLinearCost, TabulatedCost, ZeroCost
from repro.simgrid import Host, Link, Platform, cost_from_dict, cost_to_dict


def small_platform():
    plat = Platform("test")
    plat.add_host(Host("a", LinearCost(0.01), site="s1", machine="a"))
    plat.add_host(Host("b1", LinearCost(0.02), site="s1", machine="b"))
    plat.add_host(Host("b2", LinearCost(0.02), site="s1", machine="b"))
    plat.add_host(Host("c", LinearCost(0.03), site="s2", machine="c"))
    plat.connect("a", "b1", Link.linear(1e-5))
    plat.connect("a", "b2", Link.linear(1e-5))
    plat.connect("a", "c", Link.linear(5e-5))
    return plat


class TestConstruction:
    def test_duplicate_host_rejected(self):
        plat = Platform()
        plat.add_host(Host("x", LinearCost(1)))
        with pytest.raises(ValueError, match="duplicate"):
            plat.add_host(Host("x", LinearCost(2)))

    def test_connect_unknown_host(self):
        plat = small_platform()
        with pytest.raises(KeyError):
            plat.connect("a", "nope", Link.linear(1e-5))

    def test_host_names_order(self):
        assert small_platform().host_names == ["a", "b1", "b2", "c"]


class TestLinkResolution:
    def test_explicit_link(self):
        plat = small_platform()
        assert float(plat.link("a", "c").beta) == pytest.approx(5e-5)

    def test_symmetric_by_default(self):
        plat = small_platform()
        assert float(plat.link("c", "a").beta) == pytest.approx(5e-5)

    def test_loopback_free(self):
        plat = small_platform()
        assert plat.link("a", "a").transfer_time(1000) == 0.0

    def test_intra_machine_free(self):
        plat = small_platform()
        assert plat.link("b1", "b2").transfer_time(1000) == 0.0

    def test_missing_link_without_default(self):
        plat = small_platform()
        with pytest.raises(KeyError, match="no link"):
            plat.link("b1", "c")

    def test_default_link_fallback(self):
        plat = small_platform()
        plat.default_link = Link.linear(9e-5)
        assert float(plat.link("b1", "c").beta) == pytest.approx(9e-5)

    def test_asymmetric_connect(self):
        plat = small_platform()
        plat.connect("b1", "c", Link.linear(1e-4), symmetric=False)
        assert float(plat.link("b1", "c").beta) == pytest.approx(1e-4)
        with pytest.raises(KeyError):
            plat.link("c", "b1")


class TestToProblem:
    def test_root_last_with_zero_comm(self):
        plat = small_platform()
        prob = plat.to_problem(100, "a", order=None)
        assert prob.root.name == "a"
        assert isinstance(prob.root.comm, ZeroCost)
        assert prob.p == 4

    def test_explicit_order(self):
        plat = small_platform()
        prob = plat.to_problem(100, "a", order=["c", "b2", "b1"])
        assert prob.names == ("c", "b2", "b1", "a")

    def test_explicit_order_must_cover(self):
        plat = small_platform()
        with pytest.raises(ValueError, match="does not cover"):
            plat.to_problem(100, "a", order=["c"])

    def test_policy_order(self):
        plat = small_platform()
        plat.default_link = Link.linear(9e-5)  # covers b1/b2 <-> c
        prob = plat.to_problem(100, "c", order="bandwidth-desc")
        assert prob.root.name == "c"
        # 'a' has the cheapest link to c (5e-5 vs the 9e-5 default).
        assert prob.names[0] == "a"

    def test_unknown_root(self):
        with pytest.raises(KeyError):
            small_platform().to_problem(10, "zzz")

    def test_link_oracle(self):
        plat = small_platform()
        oracle = plat.link_oracle(["a", "c"])
        assert float(oracle(0, 1).rate) == pytest.approx(5e-5)
        assert oracle(0, 0)(100) == 0.0

    def test_comp_costs(self):
        plat = small_platform()
        costs = plat.comp_costs(["c", "a"])
        assert costs[0](1) == pytest.approx(0.03)
        assert costs[1](1) == pytest.approx(0.01)


class TestCostSerialization:
    @pytest.mark.parametrize(
        "cost",
        [
            ZeroCost(),
            LinearCost(0.013),
            AffineCost(0.01, 2.5),
            AffineCost(0.01, 2.5, zero_is_free=False),
            PiecewiseLinearCost([(0, 0), (10, 2), (50, 30)]),
            TabulatedCost([0.0, 1.0, 4.0]),
        ],
    )
    def test_roundtrip(self, cost):
        restored = cost_from_dict(cost_to_dict(cost))
        top = len(cost) - 1 if isinstance(cost, TabulatedCost) else 11
        for x in range(0, top + 1, max(top // 4, 1)):
            assert restored(x) == pytest.approx(cost(x))

    def test_unknown_type(self):
        with pytest.raises(ValueError, match="unknown cost type"):
            cost_from_dict({"type": "mystery"})


class TestPlatformSerialization:
    def test_roundtrip_dict(self):
        plat = small_platform()
        restored = Platform.from_dict(plat.to_dict())
        assert restored.host_names == plat.host_names
        assert float(restored.link("a", "c").beta) == pytest.approx(5e-5)
        assert restored.hosts["b1"].machine == "b"
        assert restored.hosts["c"].site == "s2"

    def test_roundtrip_file(self, tmp_path):
        plat = small_platform()
        path = tmp_path / "platform.json"
        plat.save(str(path))
        restored = Platform.load(str(path))
        assert restored.name == "test"
        assert restored.link("b1", "b2").transfer_time(10) == 0.0

    def test_default_link_roundtrip(self):
        plat = small_platform()
        plat.default_link = Link.linear(7e-5)
        restored = Platform.from_dict(plat.to_dict())
        assert float(restored.default_link.beta) == pytest.approx(7e-5)


class TestHostAndLink:
    def test_host_linear(self):
        h = Host.linear("x", 0.5)
        assert h.compute_time(10) == pytest.approx(5.0)

    def test_host_negative_items(self):
        with pytest.raises(ValueError):
            Host.linear("x", 0.5).compute_time(-1)

    def test_host_noise_applied(self):
        from repro.simgrid import SpikeNoise

        h = Host("x", LinearCost(1.0), noise=SpikeNoise("x", 0.0, 10.0, slowdown=3.0))
        assert h.compute_time(2, at=5.0) == pytest.approx(6.0)
        assert h.compute_time(2, at=20.0) == pytest.approx(2.0)

    def test_link_from_bandwidth(self):
        l = Link.from_bandwidth(1000.0)
        assert l.transfer_time(500) == pytest.approx(0.5)

    def test_link_from_bandwidth_latency(self):
        l = Link.from_bandwidth(1000.0, latency=0.1)
        assert l.transfer_time(500) == pytest.approx(0.6)
        assert l.transfer_time(0) == 0.0

    def test_link_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            Link.from_bandwidth(0.0)

    def test_link_negative_items(self):
        with pytest.raises(ValueError):
            Link.linear(1e-5).transfer_time(-5)
