"""Tests for counting-semaphore resources (capacity > 1)."""

import pytest

from repro.simgrid import Acquire, Hold, Release, Simulator


def run_workers(capacity, works):
    """Spawn one worker per duration; return (name, finish) mapping."""
    sim = Simulator()
    res = sim.resource("pool", capacity=capacity)
    done = {}

    def worker(name, duration):
        yield Acquire(res)
        yield Hold(duration)
        yield Release(res)
        done[name] = sim.now

    for i, duration in enumerate(works):
        sim.spawn(f"w{i}", worker(f"w{i}", duration))
    sim.run()
    return done


class TestCapacity:
    def test_capacity_one_serializes(self):
        done = run_workers(1, [1.0, 1.0, 1.0])
        assert sorted(done.values()) == [1.0, 2.0, 3.0]

    def test_capacity_two_pairs(self):
        done = run_workers(2, [1.0, 1.0, 1.0])
        # First two run together; the third starts when a slot frees.
        assert sorted(done.values()) == [1.0, 1.0, 2.0]

    def test_capacity_covers_all(self):
        done = run_workers(3, [1.0, 1.0, 1.0])
        assert list(done.values()) == [1.0, 1.0, 1.0]

    def test_fifo_order_of_grants(self):
        sim = Simulator()
        res = sim.resource("pool", capacity=1)
        grants = []

        def worker(name):
            yield Acquire(res)
            grants.append(name)
            yield Hold(1.0)
            yield Release(res)

        for name in ("a", "b", "c"):
            sim.spawn(name, worker(name))
        sim.run()
        assert grants == ["a", "b", "c"]

    def test_in_use_tracking(self):
        sim = Simulator()
        res = sim.resource("pool", capacity=2)
        observed = []

        def worker():
            yield Acquire(res)
            observed.append(res.in_use)
            yield Hold(1.0)
            yield Release(res)

        sim.spawn("w1", worker())
        sim.spawn("w2", worker())
        sim.run()
        # Both grants land before either body resumes (same-time events run
        # in scheduling order), so each worker observes both slots taken.
        assert observed == [2, 2]
        assert res.in_use == 0

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.resource("bad", capacity=0)

    def test_release_without_hold_rejected(self):
        sim = Simulator()
        res = sim.resource("pool", capacity=2)

        def thief():
            yield Release(res)

        sim.spawn("t", thief())
        with pytest.raises(RuntimeError, match="released"):
            sim.run()

    def test_holders_listing(self):
        sim = Simulator()
        res = sim.resource("pool", capacity=2)

        def worker():
            yield Acquire(res)
            yield Hold(5.0)
            yield Release(res)

        p1 = sim.spawn("w1", worker())
        p2 = sim.spawn("w2", worker())
        sim.run(until=1.0)
        assert set(res.holders) == {p1, p2}
