"""Tests for shared inter-site backbones."""

import pytest

from repro.core import LinearCost
from repro.simgrid import Host, Link, Network, Platform, Simulator


def two_site_platform(capacity=None):
    plat = Platform("sites")
    for name, site in [("a1", "east"), ("a2", "east"), ("b1", "west"), ("b2", "west")]:
        plat.add_host(Host(name, LinearCost(0.01), site=site))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(0.001))
    if capacity is not None:
        plat.add_backbone("east", "west", capacity)
    return plat


def run_two_cross_transfers(plat):
    """Two disjoint cross-site transfers started simultaneously; returns
    their completion times."""
    sim = Simulator()
    net = Network(sim, plat)
    done = {}

    def sender(src, dst):
        mbox = sim.mailbox()
        yield from net.send(src, dst, 100, None, mbox)  # 0.1 s each
        done[src] = sim.now

    sim.spawn("s1", sender("a1", "b1"))
    sim.spawn("s2", sender("a2", "b2"))
    sim.run()
    return done


class TestBackboneDeclaration:
    def test_lookup(self):
        plat = two_site_platform(capacity=2)
        found = plat.backbone_between("a1", "b2")
        assert found is not None and found[1] == 2

    def test_intra_site_no_backbone(self):
        plat = two_site_platform(capacity=1)
        assert plat.backbone_between("a1", "a2") is None

    def test_undeclared_pair(self):
        plat = two_site_platform()
        assert plat.backbone_between("a1", "b1") is None

    def test_validation(self):
        plat = two_site_platform()
        with pytest.raises(ValueError):
            plat.add_backbone("east", "east")
        with pytest.raises(ValueError):
            plat.add_backbone("east", "west", 0)

    def test_serialization_roundtrip(self):
        plat = two_site_platform(capacity=3)
        restored = Platform.from_dict(plat.to_dict())
        assert restored.backbone_between("a1", "b1")[1] == 3


class TestBackboneContention:
    def test_capacity_one_serializes(self):
        done = run_two_cross_transfers(two_site_platform(capacity=1))
        assert sorted(done.values()) == [
            pytest.approx(0.1),
            pytest.approx(0.2),
        ]

    def test_capacity_two_parallel(self):
        done = run_two_cross_transfers(two_site_platform(capacity=2))
        assert list(done.values()) == [pytest.approx(0.1)] * 2

    def test_no_backbone_parallel(self):
        done = run_two_cross_transfers(two_site_platform())
        assert list(done.values()) == [pytest.approx(0.1)] * 2

    def test_intra_site_unaffected(self):
        plat = two_site_platform(capacity=1)
        sim = Simulator()
        net = Network(sim, plat)
        done = {}

        def sender(src, dst):
            mbox = sim.mailbox()
            yield from net.send(src, dst, 100, None, mbox)
            done[src] = sim.now

        sim.spawn("s1", sender("a1", "a2"))
        sim.spawn("s2", sender("b1", "b2"))
        sim.run()
        assert list(done.values()) == [pytest.approx(0.1)] * 2
