"""Tests for the single-port transfer machinery."""

import pytest

from repro.core import LinearCost
from repro.simgrid import Host, Link, Network, Platform, Simulator, TraceRecorder


def make_net():
    plat = Platform("net-test")
    for name in ("root", "w1", "w2"):
        plat.add_host(Host(name, LinearCost(0.01)))
    plat.connect("root", "w1", Link.linear(0.001))
    plat.connect("root", "w2", Link.linear(0.002))
    plat.connect("w1", "w2", Link.linear(0.004))
    sim = Simulator()
    net = Network(sim, plat, TraceRecorder())
    return sim, net


class TestSend:
    def test_transfer_duration(self):
        sim, net = make_net()
        mbox = sim.mailbox()
        done = {}

        def sender():
            yield from net.send("root", "w1", 100, "payload", mbox)
            done["t"] = sim.now

        sim.spawn("s", sender())
        sim.run()
        assert done["t"] == pytest.approx(0.1)

    def test_transfer_metadata(self):
        sim, net = make_net()
        mbox = sim.mailbox()
        out = {}

        def sender():
            yield from net.send("root", "w2", 50, {"k": 1}, mbox)

        def receiver():
            tr = yield from net.recv(mbox)
            out["tr"] = tr

        sim.spawn("s", sender())
        sim.spawn("r", receiver())
        sim.run()
        tr = out["tr"]
        assert tr.src == "root" and tr.dst == "w2"
        assert tr.items == 50
        assert tr.payload == {"k": 1}
        assert tr.end - tr.start == pytest.approx(0.1)

    def test_loopback_is_free(self):
        sim, net = make_net()
        mbox = sim.mailbox()

        def sender():
            yield from net.send("w1", "w1", 10_000, "x", mbox)

        sim.spawn("s", sender())
        assert sim.run() == 0.0
        assert len(mbox) == 1

    def test_single_port_serializes_sends(self):
        """Two transfers out of the same source must not overlap: the
        paper's stair effect."""
        sim, net = make_net()
        m1, m2 = sim.mailbox(), sim.mailbox()
        log = []

        def sender(dst, items, mbox):
            yield from net.send("root", dst, items, None, mbox)
            log.append((dst, sim.now))

        sim.spawn("s1", sender("w1", 100, m1))  # 0.1 s
        sim.spawn("s2", sender("w2", 100, m2))  # 0.2 s
        sim.run()
        assert dict(log) == {"w1": pytest.approx(0.1), "w2": pytest.approx(0.3)}

    def test_different_sources_overlap(self):
        sim, net = make_net()
        m1, m2 = sim.mailbox(), sim.mailbox()
        log = {}

        def sender(src, dst, items, mbox):
            yield from net.send(src, dst, items, None, mbox)
            log[src] = sim.now

        sim.spawn("s1", sender("root", "w1", 100, m1))
        sim.spawn("s2", sender("w2", "w1", 100, m2))
        sim.run()
        # w2->w1 takes 0.4; root->w1 takes 0.1.  The destination's in-port
        # serializes them: root first (spawned first), then w2.
        assert log["root"] == pytest.approx(0.1)
        assert log["w2"] == pytest.approx(0.5)

    def test_negative_items_rejected(self):
        sim, net = make_net()
        mbox = sim.mailbox()

        def sender():
            yield from net.send("root", "w1", -1, None, mbox)

        sim.spawn("s", sender())
        with pytest.raises(ValueError):
            sim.run()

    def test_traces_recorded(self):
        sim, net = make_net()
        mbox = sim.mailbox()

        def sender():
            yield from net.send("root", "w1", 100, None, mbox)

        sim.spawn("s", sender())
        sim.run()
        assert net.recorder.timeline("root").time_in("sending") == pytest.approx(0.1)
        assert net.recorder.timeline("w1").time_in("receiving") == pytest.approx(0.1)

    def test_trace_label_override(self):
        sim, net = make_net()
        mbox = sim.mailbox()

        def sender():
            yield from net.send(
                "root", "w1", 100, None, mbox, src_trace="R", dst_trace="W"
            )

        sim.spawn("s", sender())
        sim.run()
        assert net.recorder.timeline("R").time_in("sending") == pytest.approx(0.1)
        assert net.recorder.timeline("W").time_in("receiving") == pytest.approx(0.1)


class TestCompute:
    def test_duration_and_trace(self):
        sim, net = make_net()
        host = net.platform.hosts["w1"]

        def worker():
            yield from net.compute(host, 500)

        sim.spawn("w", worker())
        assert sim.run() == pytest.approx(5.0)
        assert net.recorder.timeline("w1").time_in("computing") == pytest.approx(5.0)

    def test_zero_items(self):
        sim, net = make_net()
        host = net.platform.hosts["w1"]

        def worker():
            yield from net.compute(host, 0)

        sim.spawn("w", worker())
        assert sim.run() == 0.0
