"""Fingerprint canonicalization: equal value ⟹ equal key (and only then)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import (
    AffineCost,
    CallableCost,
    LinearCost,
    PiecewiseLinearCost,
    TabulatedCost,
    ZeroCost,
)
from repro.core.distribution import Processor, ScatterProblem
from repro.core.ordering import apply_policy
from repro.core.shared_cache import stable_cost_key
from repro.serve.fingerprint import cost_fingerprint, problem_fingerprint


class TestCostFingerprint:
    def test_fraction_vs_equal_float(self):
        # 0.5 converts to exactly 1/2 — same value, one key.
        assert cost_fingerprint(LinearCost(Fraction(1, 2))) == cost_fingerprint(
            LinearCost(0.5)
        )
        assert cost_fingerprint(AffineCost(Fraction(3, 4), Fraction(1, 8))) == (
            cost_fingerprint(AffineCost(0.75, 0.125))
        )

    def test_inexact_float_stays_distinct(self):
        # Binary 0.1 is NOT 1/10; merging them would serve a plan whose
        # makespan_exact belongs to a different instance.
        assert cost_fingerprint(LinearCost(Fraction(1, 10))) != cost_fingerprint(
            LinearCost(0.1)
        )

    def test_affine_zero_intercept_is_linear(self):
        a = AffineCost(Fraction(1, 4), 0)
        assert cost_fingerprint(a) == cost_fingerprint(LinearCost(Fraction(1, 4)))
        # zero_is_free is unobservable at intercept 0.
        b = AffineCost(Fraction(1, 4), 0, zero_is_free=False)
        assert cost_fingerprint(b) == cost_fingerprint(a)

    def test_zero_rate_forms_collapse(self):
        keys = {
            cost_fingerprint(ZeroCost()),
            cost_fingerprint(LinearCost(0)),
            cost_fingerprint(AffineCost(0, 0)),
        }
        assert keys == {"zero"}

    def test_nonzero_intercept_keeps_zero_is_free(self):
        assert cost_fingerprint(AffineCost(1, 2)) != cost_fingerprint(
            AffineCost(1, 2, zero_is_free=False)
        )

    def test_piecewise_linear_does_not_merge_with_linear(self):
        # Same values on [0, n], but pwl routes dp-fast and linear routes
        # closed-form; the fingerprint must keep them apart.
        lin = LinearCost(Fraction(1, 4))
        pwl = PiecewiseLinearCost([(0, 0), (100, 25)])
        assert cost_fingerprint(lin) != cost_fingerprint(pwl)

    def test_tabulated_keys_by_exact_values(self):
        a = TabulatedCost([0, Fraction(1, 3), Fraction(2, 3)])
        b = TabulatedCost([0, 1 / 3, 2 / 3])  # float thirds: different values
        c = TabulatedCost([Fraction(0), Fraction(1, 3), Fraction(2, 3)])
        assert cost_fingerprint(a) != cost_fingerprint(b)
        assert cost_fingerprint(a) == cost_fingerprint(c)
        # ...even where the float-table key (shared tier) collides.
        assert stable_cost_key(a) == stable_cost_key(b)

    def test_callable_has_no_fingerprint(self):
        assert cost_fingerprint(CallableCost(lambda x: 0.1 * x)) is None

    def test_stable_cost_key_merges_same_analytic_forms(self):
        # The shared-memory tier's key must collapse the same
        # analytic degeneracies (satellite: stable_cost_key fix).
        assert stable_cost_key(AffineCost(0.25, 0)) == stable_cost_key(
            LinearCost(0.25)
        )
        assert stable_cost_key(LinearCost(0)) == stable_cost_key(ZeroCost())
        assert stable_cost_key(AffineCost(0, 0)) == "zero"


def _problem(costs, n=1000):
    procs = [
        Processor(f"P{i + 1}", comm, comp)
        for i, (comm, comp) in enumerate(costs[:-1])
    ]
    comm, comp = costs[-1]
    procs.append(Processor("root", comm, comp))
    return ScatterProblem(procs, n)


class TestProblemFingerprint:
    def test_names_ignored(self):
        a = ScatterProblem(
            [Processor.linear("alice", 0.01, 2e-5),
             Processor.linear("root", 0.02, 0.0)], 100)
        b = ScatterProblem(
            [Processor.linear("bob", 0.01, 2e-5),
             Processor.linear("r0", 0.02, 0.0)], 100)
        assert problem_fingerprint(a) == problem_fingerprint(b)

    def test_n_p_algorithm_distinguish(self):
        procs = [Processor.linear("P1", 0.01, 2e-5),
                 Processor.linear("root", 0.02, 0.0)]
        a = problem_fingerprint(ScatterProblem(procs, 100))
        b = problem_fingerprint(ScatterProblem(procs, 101))
        c = problem_fingerprint(ScatterProblem(procs, 100), algorithm="uniform")
        assert len({a.key, b.key, c.key}) == 3

    def test_threshold_ignored_for_increasing_costs(self):
        procs = [Processor.linear("P1", 0.01, 2e-5),
                 Processor.linear("root", 0.02, 0.0)]
        prob = ScatterProblem(procs, 100)
        assert problem_fingerprint(prob, exact_threshold=10) == (
            problem_fingerprint(prob, exact_threshold=10_000)
        )

    def test_normalized_permutations_share_a_key(self):
        procs = [Processor.linear(f"P{i}", 0.01 * (i + 1), 1e-5 * (i + 1))
                 for i in range(4)]
        procs.append(Processor.linear("root", 0.01, 0.0))
        a = ScatterProblem(procs, 500)
        b = ScatterProblem(procs[2::-1] + [procs[3], procs[4]], 500)
        ordered_a = apply_policy(a, "bandwidth-desc")
        ordered_b = apply_policy(b, "bandwidth-desc")
        assert problem_fingerprint(ordered_a) == problem_fingerprint(ordered_b)
        # Without normalization the order is semantic: keys differ.
        assert problem_fingerprint(a) != problem_fingerprint(b)

    def test_callable_cost_poisons_the_problem(self):
        prob = _problem(
            [(LinearCost(1e-5), CallableCost(lambda x: 0.01 * x)),
             (ZeroCost(), LinearCost(0.02))]
        )
        assert problem_fingerprint(prob) is None

    def test_cost_keys_cover_every_cost(self):
        prob = _problem(
            [(LinearCost(1e-5), LinearCost(0.01)),
             (ZeroCost(), AffineCost(0.02, 1.5))]
        )
        fp = problem_fingerprint(prob)
        assert cost_fingerprint(AffineCost(0.02, 1.5)) in fp.cost_keys
        assert cost_fingerprint(LinearCost(1e-5)) in fp.cost_keys
        assert "zero" in fp.cost_keys


# Strategy: exact rationals whose float form converts back exactly, plus
# genuinely inexact floats — both sides of the equal-value contract.
_rates = st.fractions(min_value=0, max_value=10)


class TestEqualValueEqualKeyProperties:
    @settings(max_examples=60, deadline=None)
    @given(rate=_rates)
    def test_linear_key_is_a_value_function(self, rate):
        assert cost_fingerprint(LinearCost(rate)) == cost_fingerprint(
            LinearCost(Fraction(rate))
        )

    @settings(max_examples=60, deadline=None)
    @given(rate=_rates, intercept=_rates)
    def test_affine_collapses_iff_intercept_zero(self, rate, intercept):
        aff = AffineCost(rate, intercept)
        lin_key = cost_fingerprint(LinearCost(rate)) if rate else "zero"
        if intercept == 0:
            assert cost_fingerprint(aff) == lin_key
        else:
            assert cost_fingerprint(aff) != lin_key

    @settings(max_examples=40, deadline=None)
    @given(rate=_rates.filter(lambda r: r > 0))
    def test_shared_key_and_fingerprint_agree_on_analytic_merges(self, rate):
        # Both keyspaces must make the same merge decision for analytic
        # forms, or the shared tier and plan cache would disagree about
        # which instances are "the same platform".
        lin, aff = LinearCost(rate), AffineCost(rate, 0)
        assert (stable_cost_key(lin) == stable_cost_key(aff)) == (
            cost_fingerprint(lin) == cost_fingerprint(aff)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        alphas=st.lists(
            st.fractions(min_value=Fraction(1, 1000), max_value=1),
            min_size=2, max_size=5,
        ),
        n=st.integers(min_value=10, max_value=2000),
    )
    def test_equal_problems_equal_fingerprints(self, alphas, n):
        def build(names):
            procs = [
                Processor.linear(name, a, a / 100)
                for name, a in zip(names[:-1], alphas[:-1])
            ]
            procs.append(Processor.linear(names[-1], alphas[-1], 0))
            return ScatterProblem(procs, n)

        a = build([f"P{i}" for i in range(len(alphas))])
        b = build([f"Q{i}" for i in range(len(alphas))])
        fa, fb = problem_fingerprint(a), problem_fingerprint(b)
        assert fa == fb
        assert fa.canonical == fb.canonical
