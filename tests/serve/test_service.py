"""PlanService concurrency suite: stampede, coalescing, oracles, warm re-plans."""

import random
import threading

import pytest

from repro.core import (
    IncrementalPlanner,
    PiecewiseLinearCost,
    Processor,
    ScatterProblem,
    ZeroCost,
    plan_scatter,
)
from repro.core.costs import CallableCost, LinearCost
from repro.analysis.sweep import ParallelSweepEvaluator, SequentialSweepEvaluator
from repro.serve import PlanService
from repro.verify.oracles import run_oracles


def _linear_problem(p=4, n=1_000, seed=3):
    rng = random.Random(seed)
    procs = [
        Processor.linear(f"P{i + 1}", rng.uniform(0.005, 0.02),
                         rng.uniform(1e-5, 5e-5))
        for i in range(p - 1)
    ]
    procs.append(Processor.linear("root", 0.01, 0.0))
    return ScatterProblem(procs, n)


def _knee_problem(p=4, n=2_000, seed=5):
    rng = random.Random(seed)

    def knee():
        x1 = rng.randint(1, max(1, n // 3))
        r1 = rng.uniform(1e-6, 5e-5)
        r2 = rng.uniform(1e-6, 5e-5)
        return PiecewiseLinearCost(
            [(0, 0), (x1, r1 * x1), (n, r1 * x1 + r2 * (n - x1))]
        )

    procs = [Processor(f"P{i + 1}", knee(), knee()) for i in range(p - 1)]
    procs.append(Processor(f"P{p}", ZeroCost(), knee()))
    return ScatterProblem(procs, n)


class GatedPlanner:
    """An IncrementalPlanner wrapper that counts and can stall solves."""

    def __init__(self, gate=None):
        self.inner = IncrementalPlanner(order_policy=None)
        self.gate = gate
        self.calls = 0
        self.started = threading.Event()
        self._lock = threading.Lock()

    def plan(self, problem):
        with self._lock:
            self.calls += 1
        self.started.set()
        if self.gate is not None:
            assert self.gate.wait(timeout=30)
        return self.inner.plan(problem)

    def invalidate_cost(self, fn):
        return self.inner.invalidate_cost(fn)

    def stats(self):
        return self.inner.stats()


def _assert_matches_cold(result, cold):
    assert result.counts == cold.counts
    assert result.makespan == cold.makespan
    assert result.makespan_exact == cold.makespan_exact
    assert result.algorithm == cold.algorithm


class TestStampede:
    def test_k16_one_fingerprint_exactly_one_solve(self):
        problem = _linear_problem()
        cold = plan_scatter(problem)
        gate = threading.Event()
        planner = GatedPlanner(gate)
        with PlanService(planner=planner) as svc:
            barrier = threading.Barrier(16)
            tickets = [None] * 16

            def worker(i):
                barrier.wait(timeout=30)
                tickets[i] = svc.submit(problem)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(16)
            ]
            for t in threads:
                t.start()
            assert planner.started.wait(timeout=30)
            gate.set()
            for t in threads:
                t.join(timeout=60)
            assert not any(t.is_alive() for t in threads)

            assert planner.calls == 1, "stampede was not single-flighted"
            results = [t.result(timeout=30) for t in tickets]
            for r in results:
                _assert_matches_cold(r, cold)
            # One request solved; the other 15 either joined its flight
            # or (having submitted after the commit) hit the cache.
            coalesced = sum(t.coalesced for t in tickets)
            cached = sum(t.cached for t in tickets)
            assert coalesced + cached == 15
            assert coalesced >= 1

    def test_stampede_single_cost_tabulation(self):
        # End-to-end view of the CostTableCache single-flight: K=16
        # concurrent identical dp-fast requests tabulate each distinct
        # cost exactly once (the plan itself solves once, and the solve
        # misses once per distinct cost function).
        problem = _knee_problem()
        planner = GatedPlanner()
        cache = planner.inner.cache
        with PlanService(planner=planner, backend="thread", workers=4) as svc:
            barrier = threading.Barrier(16)
            tickets = [None] * 16

            def worker(i):
                barrier.wait(timeout=30)
                tickets[i] = svc.submit(problem)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            for t in tickets:
                t.result(timeout=60)
        distinct_costs = len(
            {id(fn) for proc in problem.processors for fn in (proc.comm, proc.comp)}
        )
        assert planner.calls == 1
        assert cache.stats()["misses"] <= distinct_costs


class TestCoalescingPerBackend:
    def _run_gated(self, svc, planner, gate, problem, extra=7):
        cold = plan_scatter(problem)
        first = svc.submit(problem)
        assert planner.started.wait(timeout=30)
        others = [svc.submit(problem) for _ in range(extra)]
        assert all(t.coalesced for t in others)
        gate.set()
        _assert_matches_cold(first.result(timeout=60), cold)
        for t in others:
            _assert_matches_cold(t.result(timeout=60), cold)
        assert planner.calls == 1

    def test_thread_backend(self):
        gate = threading.Event()
        planner = GatedPlanner(gate)
        with PlanService(planner=planner, backend="thread", workers=2) as svc:
            self._run_gated(svc, planner, gate, _linear_problem())

    def test_caller_owned_shared_tier_executor(self):
        gate = threading.Event()
        planner = GatedPlanner(gate)
        with ParallelSweepEvaluator(2, backend="thread",
                                    cache_tier="shared") as ev:
            with PlanService(planner=planner, executor=ev) as svc:
                self._run_gated(svc, planner, gate, _knee_problem())

    def test_sequential_backend_coalesces_across_threads(self):
        # Inline solving still single-flights: submitters racing the
        # solver thread join its flight.
        gate = threading.Event()
        planner = GatedPlanner(gate)
        problem = _linear_problem()
        cold = plan_scatter(problem)
        with PlanService(planner=planner) as svc:
            t1 = threading.Thread(target=lambda: svc.plan(problem))
            t1.start()
            assert planner.started.wait(timeout=30)
            second = svc.submit(problem)
            assert second.coalesced
            gate.set()
            t1.join(timeout=60)
            _assert_matches_cold(second.result(timeout=60), cold)
        assert planner.calls == 1

    def test_process_backend(self):
        problem = _knee_problem(n=20_000)
        with PlanService(backend="process", workers=2) as svc:
            first = svc.submit(problem)
            others = [svc.submit(problem) for _ in range(5)]
            # The solve crosses a process boundary (milliseconds at
            # best); these submits land well inside its flight window.
            assert all(t.coalesced for t in others)
            cold = plan_scatter(problem)
            _assert_matches_cold(first.result(timeout=120), cold)
            for t in others:
                _assert_matches_cold(t.result(timeout=120), cold)

    def test_coalescing_with_cache_disabled(self):
        gate = threading.Event()
        planner = GatedPlanner(gate)
        with PlanService(planner=planner, cache_size=0,
                         backend="thread", workers=2) as svc:
            self._run_gated(svc, planner, gate, _linear_problem(), extra=3)
            # Cache off: an identical request *after* the flight lands
            # solves again instead of hitting.
            gate2 = threading.Event()
            planner.gate = gate2
            planner.started.clear()
            later = svc.submit(_linear_problem())
            gate2.set()
            later.result(timeout=60)
            assert not later.cached
            assert planner.calls == 2


class TestServedPlansPassOracles:
    @pytest.mark.parametrize("problem_factory", [
        _linear_problem,
        _knee_problem,
        lambda: ScatterProblem(
            [Processor.affine("P1", 0.01, 2e-5, 0.5, 0.1),
             Processor.affine("P2", 0.02, 1e-5, 0.2, 0.3),
             Processor.affine("root", 0.01, 0.0)], 500),
    ])
    def test_eq1_and_dist_valid(self, problem_factory):
        problem = problem_factory()
        with PlanService() as svc:
            for _ in range(2):  # solved, then served from cache
                result = svc.plan(problem)
                reports = run_oracles(
                    result.problem, {"serve": result},
                    only=["eq1-recompute", "dist-valid"],
                )
                assert all(r.ok for r in reports), [
                    (r.oracle_id, r.violations) for r in reports
                ]


class TestCacheAndInvalidation:
    def test_second_request_hits(self):
        problem = _linear_problem()
        with PlanService() as svc:
            a = svc.submit(problem)
            b = svc.submit(problem)
            assert not a.cached and b.cached
            _assert_matches_cold(b.result(), plan_scatter(problem))
            assert svc.stats()["hit_rate"] == 0.5

    def test_ttl_expiry_resolves_warm(self):
        clock = [0.0]
        planner = IncrementalPlanner(order_policy=None)
        problem = _knee_problem()
        with PlanService(planner=planner, ttl=10.0,
                         time_fn=lambda: clock[0]) as svc:
            first = svc.plan(problem)
            clock[0] = 5.0
            assert svc.submit(problem).cached  # still fresh
            clock[0] = 11.0
            again = svc.plan(problem)  # expired: re-solve, warm-started
            _assert_matches_cold(again, first)
        stats = planner.stats()
        assert stats["plans"] == 2
        assert stats["warm_plans"] >= 1
        assert svc.cache.stats()["expired"] == 1

    def test_invalidate_cost_evicts_and_replans(self):
        problem = _knee_problem()
        planner = IncrementalPlanner(order_policy=None)
        with PlanService(planner=planner) as svc:
            first = svc.plan(problem)
            changed = problem.processors[0].comp
            assert svc.invalidate_cost(changed) == 1
            again = svc.submit(problem)
            assert not again.cached
            _assert_matches_cold(again.result(), first)

    def test_invalidate_problem(self):
        problem = _linear_problem()
        with PlanService() as svc:
            svc.plan(problem)
            assert svc.invalidate(problem) is True
            assert svc.invalidate(problem) is False
            assert not svc.submit(problem).cached

    def test_callable_costs_bypass_cache_and_coalescing(self):
        procs = [
            Processor("P1", LinearCost(1e-5), CallableCost(lambda x: 0.01 * x)),
            Processor("root", ZeroCost(), LinearCost(0.02)),
        ]
        problem = ScatterProblem(procs, 200)
        planner = GatedPlanner()
        with PlanService(planner=planner, algorithm="dp-basic",
                         order_policy=None) as svc:
            a = svc.plan(problem)
            b = svc.plan(problem)
            assert planner.calls == 2  # never cached, never coalesced
            assert a.info["serve"]["fingerprint"] is None
            _assert_matches_cold(
                a, plan_scatter(problem, algorithm="dp-basic",
                                order_policy=None))
            _assert_matches_cold(a, b)


class TestServiceLifecycle:
    def test_errors_propagate_and_are_not_cached(self):
        class Boom:
            def plan(self, problem):
                raise RuntimeError("solver exploded")

        problem = _linear_problem()
        with PlanService(planner=Boom()) as svc:
            with pytest.raises(RuntimeError, match="solver exploded"):
                svc.plan(problem)
            assert len(svc.cache) == 0
            assert svc.stats()["inflight"] == 0

    def test_closed_service_rejects_submissions(self):
        svc = PlanService()
        svc.close()
        with pytest.raises(RuntimeError):
            svc.submit(_linear_problem())

    def test_random_order_policy_rejected(self):
        with pytest.raises(ValueError, match="random"):
            PlanService(order_policy="random")

    def test_executor_and_backend_mutually_exclusive(self):
        with pytest.raises(ValueError):
            PlanService(executor=SequentialSweepEvaluator(), backend="thread")

    def test_latency_metrics_populate(self):
        problem = _linear_problem()
        with PlanService() as svc:
            svc.plan(problem)
            svc.plan(problem)
            stats = svc.stats()
        assert stats["latency_count"] >= 2
        assert stats["latency_p50_s"] is not None
        assert stats["latency_p99_s"] is not None
