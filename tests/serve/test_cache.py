"""PlanCache: LRU bounds, TTL expiry, per-cost invalidation."""

import pytest

from repro.serve.cache import CachedPlan, PlanCache


def _plan(tag=0, cost_keys=()):
    return CachedPlan(
        counts=(10 + tag, 5), makespan=1.0 + tag, algorithm="closed-form",
        cost_keys=frozenset(cost_keys),
    )


class TestPlanCache:
    def test_get_put_roundtrip(self):
        cache = PlanCache(4)
        assert cache.get("k") is None
        cache.put("k", _plan())
        assert cache.get("k") == _plan()
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_evicts_oldest(self):
        cache = PlanCache(2)
        cache.put("a", _plan(1))
        cache.put("b", _plan(2))
        cache.get("a")            # refresh a; b becomes oldest
        cache.put("c", _plan(3))  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats()["evictions"] == 1

    def test_size_zero_disables(self):
        cache = PlanCache(0)
        cache.put("k", _plan())
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_ttl_expiry_counts_as_miss(self):
        cache = PlanCache(4, ttl=10.0)
        cache.put("k", _plan(), now=100.0)
        assert cache.get("k", now=105.0) is not None
        assert cache.get("k", now=110.0) is None  # expired at now >= 110
        stats = cache.stats()
        assert stats["expired"] == 1
        assert stats["misses"] == 1
        assert len(cache) == 0

    def test_put_refreshes_ttl(self):
        cache = PlanCache(4, ttl=10.0)
        cache.put("k", _plan(1), now=0.0)
        cache.put("k", _plan(2), now=8.0)
        assert cache.get("k", now=15.0) == _plan(2)

    def test_invalidate_single_entry(self):
        cache = PlanCache(4)
        cache.put("k", _plan())
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert cache.get("k") is None

    def test_invalidate_cost_evicts_only_dependents(self):
        cache = PlanCache(8)
        cache.put("a", _plan(1, cost_keys={"lin:1/2", "zero"}))
        cache.put("b", _plan(2, cost_keys={"lin:1/4", "zero"}))
        cache.put("c", _plan(3, cost_keys={"lin:1/2", "lin:1/4"}))
        assert cache.invalidate_cost("lin:1/2") == 2
        assert cache.get("a") is None
        assert cache.get("c") is None
        assert cache.get("b") is not None
        assert cache.invalidate_cost(None) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanCache(-1)
        with pytest.raises(ValueError):
            PlanCache(4, ttl=0)
