"""The JSONL request loop and the ``repro-scatter serve`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.core import plan_scatter
from repro.serve import PlanService
from repro.serve.jsonl import parse_request, serve_jsonl
from repro.workloads.table1 import table1_problem


def _lines(docs):
    return [json.dumps(d) for d in docs]


class TestParseRequest:
    def test_table1_platform(self):
        req_id, problem = parse_request('{"id": 1, "n": 5000}')
        assert req_id == 1
        assert problem.n == 5000
        assert problem.p == table1_problem(5000).p

    def test_explicit_processors_root_last(self):
        req_id, problem = parse_request(json.dumps({
            "id": "x", "n": 100,
            "processors": [
                {"name": "a", "alpha": 0.01, "beta": 2e-5},
                {"name": "b", "alpha": 0.02, "beta": 1e-5,
                 "comp_intercept": 0.5},
                {"name": "r", "alpha": 0.01, "beta": 0.0},
            ],
        }))
        assert problem.p == 3
        assert problem.processors[-1].name == "r"
        assert not problem.is_linear  # the intercept made b affine

    @pytest.mark.parametrize("line", [
        "not json",
        "[1, 2]",
        '{"id": 1}',
        '{"id": 1, "n": 0}',
        '{"id": 1, "n": true}',
        '{"id": 1, "n": 10, "platform": "marsnet"}',
        '{"id": 1, "n": 10, "processors": []}',
        '{"id": 1, "n": 10, "processors": [{"beta": 1}, {"alpha": 1}]}',
    ])
    def test_malformed(self, line):
        with pytest.raises(ValueError):
            parse_request(line)


class TestServeJsonl:
    def test_responses_in_input_order_with_errors_inline(self):
        lines = _lines([
            {"id": "a", "n": 1000},
            {"id": "b", "n": 1000},
            {"id": "c", "n": 2000},
        ])
        lines.insert(2, "garbage")
        with PlanService() as svc:
            responses = list(serve_jsonl(lines, svc, window=4))
        assert [r["id"] for r in responses] == ["a", "b", None, "c"]
        assert [r["ok"] for r in responses] == [True, True, False, True]
        cold = plan_scatter(table1_problem(1000))
        assert responses[0]["counts"] == list(cold.counts)
        assert responses[0]["makespan"] == cold.makespan
        assert not responses[0]["cached"] and responses[1]["cached"]

    def test_window_batches_submissions(self):
        lines = _lines([{"id": i, "n": 1000} for i in range(5)])
        with PlanService() as svc:
            out = list(serve_jsonl(iter(lines), svc, window=2))
        assert len(out) == 5
        assert all(r["ok"] for r in out)

    def test_identical_requests_coalesce_on_thread_backend(self):
        lines = _lines([{"id": i, "n": 4000} for i in range(8)])
        with PlanService(backend="thread", workers=2) as svc:
            out = list(serve_jsonl(lines, svc, window=8))
        assert all(r["ok"] for r in out)
        served_twice = [r for r in out if r["cached"] or r["coalesced"]]
        assert len(served_twice) == 7  # one solve for the whole window

    def test_blank_lines_skipped_and_window_validated(self):
        with PlanService() as svc:
            assert list(serve_jsonl(["", "  "], svc)) == []
            with pytest.raises(ValueError):
                list(serve_jsonl([], svc, window=0))


class TestServeCli:
    def test_cli_round_trip(self, tmp_path, capsys):
        req = tmp_path / "req.jsonl"
        req.write_text("\n".join(_lines([
            {"id": 0, "n": 1000},
            {"id": 1, "n": 1000},
            {"id": 2, "n": 815000},
        ])))
        rc = main(["serve", "--input", str(req), "--stats"])
        assert rc == 0
        out = capsys.readouterr()
        responses = [json.loads(line) for line in out.out.splitlines()]
        assert [r["id"] for r in responses] == [0, 1, 2]
        assert all(r["ok"] for r in responses)
        assert responses[1]["cached"]
        assert "served 3 requests" in out.err

    def test_cli_metrics_flag(self, tmp_path, capsys):
        req = tmp_path / "req.jsonl"
        req.write_text(_lines([{"id": 0, "n": 500}])[0])
        rc = main(["serve", "--input", str(req), "--metrics"])
        assert rc == 0
        out = capsys.readouterr()
        assert "serve.latency_s" in out.err

    def test_cli_cache_disabled(self, tmp_path, capsys):
        req = tmp_path / "req.jsonl"
        req.write_text("\n".join(_lines([{"id": i, "n": 700} for i in range(2)])))
        rc = main(["serve", "--input", str(req), "--cache-size", "0",
                   "--window", "1"])
        assert rc == 0
        responses = [json.loads(line)
                     for line in capsys.readouterr().out.splitlines()]
        assert all(not r["cached"] for r in responses)
