"""Topology plumbing through the serving layer (tree-aware PlanService).

The fingerprint gains a ``;topo=`` clause only for non-flat topologies —
pre-existing flat cache keys stay byte-identical — and tree plans
round-trip through the cache with their full info payload
(:class:`~repro.core.trees.ScatterTree`, construction, bounds) minus the
wall-clock ``profile``.
"""

import random

import pytest

from repro.core import Processor, ScatterProblem, plan_scatter
from repro.core.trees import ScatterTree
from repro.serve import PlanService
from repro.serve.fingerprint import problem_fingerprint


def affine_problem(p=6, n=300, seed=11):
    rng = random.Random(seed)
    procs = [
        Processor.affine(
            f"P{i + 1}",
            rng.uniform(0.005, 0.02),
            rng.uniform(1e-4, 5e-4),
            comm_intercept=rng.uniform(0.1, 0.5),
        )
        for i in range(p - 1)
    ]
    procs.append(Processor.linear("root", 0.01, 0.0))
    return ScatterProblem(procs, n)


class TestFingerprintTopology:
    def test_flat_keys_unchanged_by_the_topology_clause(self):
        problem = affine_problem()
        assert problem_fingerprint(problem) == problem_fingerprint(
            problem, topology="flat"
        )
        assert ";topo=" not in problem_fingerprint(problem, topology="flat").canonical

    def test_tree_keys_are_distinct(self):
        problem = affine_problem()
        flat = problem_fingerprint(problem)
        tree = problem_fingerprint(problem, topology="tree")
        assert flat.key != tree.key
        assert ";topo=tree" in tree.canonical

    def test_tree_keys_still_canonical_over_problems(self):
        a = affine_problem(seed=11)
        b = affine_problem(seed=11)
        c = affine_problem(seed=12)
        assert problem_fingerprint(a, topology="tree") == problem_fingerprint(
            b, topology="tree"
        )
        assert problem_fingerprint(a, topology="tree") != problem_fingerprint(
            c, topology="tree"
        )


class TestTreeService:
    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError, match="topology"):
            PlanService(topology="ring")

    def test_tree_service_matches_cold_tree_plan(self):
        problem = affine_problem()
        cold = plan_scatter(problem, topology="tree")
        with PlanService(topology="tree") as svc:
            result = svc.submit(problem).result(timeout=60)
        assert result.counts == cold.counts
        assert result.algorithm == cold.algorithm
        assert result.makespan_exact == cold.makespan_exact
        assert result.info["tree"] == cold.info["tree"]
        assert result.info["construction"] == cold.info["construction"]

    def test_cached_tree_plan_keeps_tree_info(self):
        problem = affine_problem()
        with PlanService(topology="tree") as svc:
            first = svc.submit(problem).result(timeout=60)
            second_ticket = svc.submit(problem)
            second = second_ticket.result(timeout=60)
        assert second.info["serve"]["cached"]
        assert isinstance(second.info["tree"], ScatterTree)
        assert second.info["tree"] == first.info["tree"]
        assert second.info["lower_bound_exact"] == first.info["lower_bound_exact"]
        assert second.makespan_exact <= second.info["flat_makespan_exact"]
        # The wall-clock profile never survives the cache.
        assert "profile" not in second.info

    def test_flat_and_tree_services_do_not_share_entries(self):
        problem = affine_problem()
        with PlanService(topology="flat") as flat_svc:
            flat = flat_svc.submit(problem).result(timeout=60)
        with PlanService(topology="tree") as tree_svc:
            tree = tree_svc.submit(problem).result(timeout=60)
        assert not flat.algorithm.startswith("tree-")
        assert tree.algorithm.startswith("tree-")
        assert "tree" not in flat.info
        # The tree plan is never worse (flat is in its candidate set).
        assert tree.makespan_exact <= flat.makespan_exact
