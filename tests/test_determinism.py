"""Determinism guarantees: identical inputs must give bit-identical runs.

Everything in the stack is seeded or deterministic (event queue tie-break,
hash-based jitter, seeded catalogs), so whole-pipeline reruns must agree
exactly — the property that makes every number in EXPERIMENTS.md
regenerable.
"""

import numpy as np
import pytest

from repro.core import uniform_counts
from repro.simgrid import CompositeNoise, JitterNoise, SpikeNoise
from repro.tomo import generate_catalog, plan_counts, run_seismic_app
from repro.workloads import table1_platform, table1_rank_hosts


def noisy_platform(seed=11):
    plat = table1_platform()
    for host in plat.hosts.values():
        host.noise = CompositeNoise(
            [
                JitterNoise(seed=seed, amplitude=0.07),
                SpikeNoise("sekhmet", 10.0, 40.0, slowdown=1.3),
            ]
        )
    return plat


class TestRunDeterminism:
    def test_identical_clean_runs(self):
        plat = table1_platform()
        hosts = table1_rank_hosts()
        counts = plan_counts(plat, hosts, 30_000)
        a = run_seismic_app(plat, hosts, counts)
        b = run_seismic_app(plat, hosts, counts)
        assert a.makespan == b.makespan
        assert a.finish_times == b.finish_times
        assert a.run.recorder.to_dict() == b.run.recorder.to_dict()

    def test_identical_noisy_runs(self):
        hosts = table1_rank_hosts()
        counts = list(uniform_counts(30_000, 16))
        a = run_seismic_app(noisy_platform(), hosts, counts)
        b = run_seismic_app(noisy_platform(), hosts, counts)
        assert a.run.recorder.to_dict() == b.run.recorder.to_dict()

    def test_noise_seed_changes_run(self):
        hosts = table1_rank_hosts()
        counts = list(uniform_counts(30_000, 16))
        a = run_seismic_app(noisy_platform(seed=1), hosts, counts)
        b = run_seismic_app(noisy_platform(seed=2), hosts, counts)
        assert a.makespan != b.makespan

    def test_noise_only_slows_down(self):
        """Noise factors are >= 1, so every finish time moves later (or
        stays) relative to the clean run."""
        hosts = table1_rank_hosts()
        counts = list(uniform_counts(30_000, 16))
        clean = run_seismic_app(table1_platform(), hosts, counts)
        noisy = run_seismic_app(noisy_platform(), hosts, counts)
        for t_clean, t_noisy, c in zip(
            clean.finish_times, noisy.finish_times, counts
        ):
            if c > 0:
                assert t_noisy >= t_clean - 1e-9


class TestSolverDeterminism:
    def test_heuristic_is_pure(self):
        from repro.core import solve_heuristic
        from repro.workloads import table1_problem

        prob = table1_problem(50_000)
        assert solve_heuristic(prob).counts == solve_heuristic(prob).counts

    def test_dp_is_pure(self):
        from repro.core import solve_dp_optimized
        from repro.workloads import table1_problem

        prob = table1_problem(400)
        assert solve_dp_optimized(prob).counts == solve_dp_optimized(prob).counts


class TestDataDeterminism:
    def test_catalog_bitwise_stable(self):
        a = generate_catalog(5_000, seed=3)
        b = generate_catalog(5_000, seed=3)
        assert a.tobytes() == b.tobytes()

    def test_tracer_tables_stable(self):
        from repro.tomo import RayTracer

        t1 = RayTracer(n_p=128, n_r=512, n_delta=128)
        t2 = RayTracer(n_p=128, n_r=512, n_delta=128)
        d = np.deg2rad(np.linspace(1, 150, 50))
        np.testing.assert_array_equal(t1.travel_times(d), t2.travel_times(d))

    def test_prefix_size_invariance(self):
        """Travel times of the first k rays don't depend on the rest of the
        batch (pure per-ray function)."""
        from repro.tomo import RayTracer

        tr = RayTracer(n_p=128, n_r=512, n_delta=128)
        cat = generate_catalog(400, seed=9)
        full = tr.trace_catalog(cat)
        head = tr.trace_catalog(cat[:100])
        np.testing.assert_array_equal(full[:100], head)
