"""Runtime lock-sanitizer tests (the dynamic half of the conc-* rules).

``test_two_thread_inversion_detected`` drives the same planted AB/BA
inversion that ``tests/lint/test_rules_concurrency.py`` proves the
static ``conc-lock-order`` rule reports — one bug, both detectors.
"""

import threading

import pytest

from repro.lint.runtime import (
    ENV_FLAG,
    SanitizedLock,
    assert_sanitizer_clean,
    install_lock_sanitizer,
    make_lock,
    note_blocking,
    reset_sanitizer,
    sanitizer_active,
    sanitizer_violations,
    uninstall_lock_sanitizer,
)
from repro.obs.metrics import METRICS


def _kinds():
    return sorted({v.kind for v in sanitizer_violations()})


class TestSanitizedLockMechanics:
    def test_context_manager_and_locked(self, lock_sanitizer):
        lock = SanitizedLock("demo")
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()
        assert sanitizer_violations() == []

    def test_acquire_release_and_repr(self, lock_sanitizer):
        lock = SanitizedLock("demo")
        assert lock.acquire()
        assert "locked" in repr(lock)
        lock.release()
        assert "unlocked" in repr(lock)

    def test_non_blocking_acquire_failure_does_not_push_stack(
        self, lock_sanitizer
    ):
        lock = SanitizedLock("demo")
        lock.acquire()
        try:
            grabbed = []

            def contender():
                grabbed.append(lock.acquire(blocking=False))

            t = threading.Thread(target=contender)
            t.start()
            t.join()
            assert grabbed == [False]
        finally:
            lock.release()
        # The failed acquire must not have left ghost held-state: a
        # fresh acquisition pair in either order is not an inversion.
        other = SanitizedLock("other")
        with other:
            with lock:
                pass
        assert sanitizer_violations() == []


class TestViolationDetection:
    def test_two_thread_inversion_detected(self, lock_sanitizer):
        accounts = SanitizedLock("Transfer._accounts")
        journal = SanitizedLock("Transfer._journal")

        def debit():  # acquires accounts -> journal
            with accounts:
                with journal:
                    pass

        def audit():  # acquires journal -> accounts: inverts the order
            with journal:
                with accounts:
                    pass

        t1 = threading.Thread(target=debit, name="debit")
        t2 = threading.Thread(target=audit, name="audit")
        t1.start(); t1.join()
        t2.start(); t2.join()

        cycles = [v for v in sanitizer_violations() if v.kind == "cycle"]
        assert len(cycles) == 1
        v = cycles[0]
        assert v.thread == "audit"
        assert "Transfer._accounts" in v.detail
        assert "Transfer._journal" in v.detail
        assert "cycle" in v.detail
        with pytest.raises(AssertionError, match="1 violation"):
            assert_sanitizer_clean()

    def test_consistent_order_is_clean(self, lock_sanitizer):
        a = SanitizedLock("a")
        b = SanitizedLock("b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert_sanitizer_clean()

    def test_transitive_cycle_through_third_lock(self, lock_sanitizer):
        a, b, c = (SanitizedLock(n) for n in "abc")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        # a -> b -> c observed; c -> a closes the 3-cycle.
        with c:
            with a:
                pass
        cycles = [v for v in sanitizer_violations() if v.kind == "cycle"]
        assert len(cycles) == 1
        assert "a -> b -> c" in cycles[0].detail

    def test_reentrant_acquisition_detected(self, lock_sanitizer):
        lock = SanitizedLock("box")
        lock.acquire()
        # A second blocking acquire would deadlock for real; the check
        # runs *before* blocking, so probe with blocking=False.
        lock.acquire(blocking=False)
        lock.release()
        assert _kinds() == ["reentrant"]

    def test_note_blocking_under_lock_detected(self, lock_sanitizer):
        lock = SanitizedLock("cache")
        with lock:
            note_blocking("solve")
        blocking = [v for v in sanitizer_violations() if v.kind == "blocking"]
        assert len(blocking) == 1
        assert blocking[0].lock == "solve"
        assert blocking[0].held == ("cache",)

    def test_note_blocking_without_lock_is_clean(self, lock_sanitizer):
        note_blocking("solve")
        assert sanitizer_violations() == []

    def test_per_thread_stacks_do_not_cross_talk(self, lock_sanitizer):
        a = SanitizedLock("a")
        b = SanitizedLock("b")
        barrier = threading.Barrier(2)

        def hold(lock):
            with lock:
                barrier.wait()  # both threads hold one lock each
                barrier.wait()

        t1 = threading.Thread(target=hold, args=(a,))
        t2 = threading.Thread(target=hold, args=(b,))
        t1.start(); t2.start()
        t1.join(); t2.join()
        # Neither thread held the other's lock: no edges, no violations.
        assert lock_sanitizer.edges == {}
        assert sanitizer_violations() == []


class TestLifecycle:
    def test_make_lock_plain_when_inactive(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        prior = uninstall_lock_sanitizer()
        try:
            lock = make_lock("plain")
            assert not isinstance(lock, SanitizedLock)
        finally:
            if prior is not None:
                install_lock_sanitizer()

    def test_make_lock_env_flag_auto_installs(self, monkeypatch):
        prior = uninstall_lock_sanitizer()
        monkeypatch.setenv(ENV_FLAG, "1")
        try:
            lock = make_lock("ambient")
            assert isinstance(lock, SanitizedLock)
            assert sanitizer_active()
        finally:
            uninstall_lock_sanitizer()
            if prior is not None:
                install_lock_sanitizer()

    def test_install_is_idempotent(self, lock_sanitizer):
        assert install_lock_sanitizer() is lock_sanitizer

    def test_uninstalled_sanitized_lock_degrades_to_plain(self):
        prior = uninstall_lock_sanitizer()
        try:
            lock = SanitizedLock("orphan")
            with lock:
                pass
            assert sanitizer_violations() == []
            assert not sanitizer_active()
        finally:
            if prior is not None:
                install_lock_sanitizer()

    def test_reset_drops_history_but_stays_active(self, lock_sanitizer):
        lock = SanitizedLock("x")
        lock.acquire(); lock.acquire(blocking=False); lock.release()
        assert sanitizer_violations()
        reset_sanitizer()
        assert sanitizer_active()
        assert sanitizer_violations() == []
        assert_sanitizer_clean()

    def test_metrics_counters(self, lock_sanitizer):
        acquires = METRICS.counter("lint.sanitizer.acquires").value
        violations = METRICS.counter("lint.sanitizer.violations").value
        a = SanitizedLock("m1")
        b = SanitizedLock("m2")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert METRICS.counter("lint.sanitizer.acquires").value == acquires + 4
        assert (
            METRICS.counter("lint.sanitizer.violations").value
            == violations + 1
        )
        assert METRICS.gauge("lint.sanitizer.edges").value == 2


class TestWiredLayers:
    """The serve/cache layers construct their locks through make_lock."""

    def test_cost_cache_lock_is_sanitized(self, lock_sanitizer):
        from repro.core.costs import CostTableCache

        cache = CostTableCache()
        assert isinstance(cache._lock, SanitizedLock)
        assert cache._lock.name == "CostTableCache._lock"

    def test_plan_service_end_to_end_is_clean(self, lock_sanitizer):
        from repro.core import Processor, ScatterProblem
        from repro.serve import PlanService

        procs = [
            Processor.linear("w1", alpha=0.004, beta=1e-5),
            Processor.linear("w2", alpha=0.009, beta=2e-5),
            Processor.linear("root", alpha=0.009, beta=0.0),
        ]
        problem = ScatterProblem(procs, n=60)
        service = PlanService()
        first = service.plan(problem)
        second = service.plan(problem)
        assert first.counts == second.counts
        assert lock_sanitizer.acquires > 0
        assert_sanitizer_clean()
