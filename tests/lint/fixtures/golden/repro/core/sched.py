"""Planted determinism bugs for the golden lint snapshot."""

import random


def schedule(picks):
    rng = random.Random()
    draws = [rng.random() for _ in sorted(picks)]
    names = [name for name in {"a", "b"}]
    return draws, names
