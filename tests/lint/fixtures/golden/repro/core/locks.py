"""Planted concurrency bugs for the golden lint snapshot."""

import threading


class Transfer:
    def __init__(self):
        self._accounts = threading.Lock()
        self._journal = threading.Lock()
        self.balance = 0

    def debit(self):
        with self._accounts:
            with self._journal:
                self.balance -= 1

    def audit(self):
        with self._journal:
            with self._accounts:
                return self.balance

    def reset(self):
        self.balance = 0


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._done_event = threading.Event()
        self.ready = False

    def wait_done(self):
        with self._lock:
            self._done_event.wait()

    def spin(self):
        while not self.ready:
            self._done_event.wait(0.1)
