"""Byte-stable golden snapshot of the ``repro-lint/v1`` JSON output.

The fixture tree under ``fixtures/golden/repro/`` plants one instance of
each conc-* rule plus two determinism findings; the expected document is
checked byte-for-byte so any change to finding positions, messages,
ordering, or the schema envelope shows up as a diff against
``fixtures/golden_expected.json``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint import render_findings_json, run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures"
SRC = FIXTURES.parents[2] / "src"


def _expected() -> str:
    return (FIXTURES / "golden_expected.json").read_text(encoding="utf-8")


def test_golden_json_snapshot_is_byte_stable(monkeypatch):
    monkeypatch.chdir(FIXTURES)
    doc = render_findings_json(run_lint(["golden"]))
    assert doc == _expected()


def test_golden_covers_every_conc_rule():
    doc = json.loads(_expected())
    assert doc["schema"] == "repro-lint/v1"
    assert doc["count"] == sum(doc["by_rule"].values()) == len(doc["findings"])
    for rule in (
        "conc-lock-order",
        "conc-unguarded-shared-state",
        "conc-blocking-under-lock",
        "conc-event-wait-unguarded-predicate",
    ):
        assert doc["by_rule"].get(rule, 0) >= 1, rule


def test_cli_json_matches_golden():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--json", "golden"],
        cwd=FIXTURES,
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1  # findings present
    assert proc.stdout == _expected()
