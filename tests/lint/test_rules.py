"""Per-rule fixtures: one firing case (with location) and one silent case."""

from repro.lint import lint_source


def only(findings, rule):
    hits = [f for f in findings if f.rule == rule]
    assert [f.rule for f in findings] == [rule] * len(findings), findings
    return hits


class TestUnseededRandom:
    RULE = "det-unseeded-random"

    def test_global_random_call_fires(self):
        src = "import random\n\nx = random.random()\n"
        (f,) = only(lint_source(src, "core/x.py"), self.RULE)
        assert (f.line, f.col) == (3, 4)

    def test_from_import_alias_fires(self):
        src = "from random import shuffle\n\nshuffle(items)\n"
        (f,) = only(lint_source(src, "mpi/x.py"), self.RULE)
        assert f.line == 3

    def test_seeded_random_instance_silent(self):
        src = "import random\n\nrng = random.Random(42)\nx = rng.random()\n"
        assert lint_source(src, "core/x.py") == []

    def test_unseeded_constructor_fires(self):
        src = "import random\n\nrng = random.Random()\n"
        (f,) = only(lint_source(src, "core/x.py"), self.RULE)
        assert "seed" in f.message

    def test_system_random_always_fires(self):
        src = "import random\n\nrng = random.SystemRandom(7)\n"
        (f,) = only(lint_source(src, "core/x.py"), self.RULE)
        assert "nondeterministic" in f.message

    def test_numpy_global_state_fires(self):
        src = "import numpy as np\n\nx = np.random.rand(3)\n"
        (f,) = only(lint_source(src, "workloads/x.py"), self.RULE)
        assert "default_rng" in f.message

    def test_numpy_seeded_rng_silent(self):
        src = "import numpy as np\n\nrng = np.random.default_rng(0)\nx = rng.random()\n"
        assert lint_source(src, "workloads/x.py") == []

    def test_outside_scoped_dirs_silent(self):
        src = "import random\n\nx = random.random()\n"
        assert lint_source(src, "analysis/x.py") == []


class TestWallClock:
    RULE = "det-wall-clock"

    def test_time_time_fires(self):
        src = "import time\n\nstart = time.time()\n"
        (f,) = only(lint_source(src, "simgrid/x.py"), self.RULE)
        assert (f.line, f.col) == (3, 8)

    def test_from_import_perf_counter_fires(self):
        src = "from time import perf_counter\n\nt = perf_counter()\n"
        (f,) = only(lint_source(src, "core/x.py"), self.RULE)
        assert f.line == 3

    def test_datetime_now_fires(self):
        src = "import datetime\n\nstamp = datetime.datetime.now()\n"
        (f,) = only(lint_source(src, "mpi/x.py"), self.RULE)
        assert f.line == 3

    def test_profiler_exempt(self):
        src = "import time\n\nt = time.perf_counter()\n"
        assert lint_source(src, "obs/profiler.py") == []

    def test_unrelated_time_module_attr_silent(self):
        src = "import time\n\nx = time.sleep\n"
        assert lint_source(src, "core/x.py") == []


class TestUnorderedIteration:
    RULE = "det-unordered-iter"

    def test_set_literal_iteration_fires(self):
        src = "for x in {3, 1, 2}:\n    use(x)\n"
        (f,) = only(lint_source(src, "core/x.py"), self.RULE)
        assert (f.line, f.col) == (1, 9)

    def test_set_difference_iteration_fires(self):
        src = "for h in set(a) - set(b):\n    use(h)\n"
        (f,) = only(lint_source(src, "workloads/x.py"), self.RULE)
        assert f.line == 1

    def test_set_typed_local_fires(self):
        src = "def f(items):\n    seen = set(items)\n    return [g(x) for x in seen]\n"
        (f,) = only(lint_source(src, "simgrid/x.py"), self.RULE)
        assert f.line == 3

    def test_sorted_set_silent(self):
        src = "for x in sorted({3, 1, 2}):\n    use(x)\n"
        assert lint_source(src, "core/x.py") == []

    def test_dict_values_in_decision_function_fires(self):
        src = (
            "def plan_redistribution(table):\n"
            "    for v in table.values():\n"
            "        assign(v)\n"
        )
        (f,) = only(lint_source(src, "mpi/x.py"), self.RULE)
        assert f.line == 2

    def test_dict_values_elsewhere_silent(self):
        src = "def render(table):\n    for v in table.values():\n        show(v)\n"
        assert lint_source(src, "mpi/x.py") == []

    def test_set_annotated_parameter_fires(self):
        src = (
            "from typing import Set\n\n"
            "def assign(survivors: Set[int]):\n"
            "    return [g(r) for r in survivors]\n"
        )
        (f,) = only(lint_source(src, "mpi/x.py"), self.RULE)
        assert f.line == 4
        assert "set-typed" in f.message

    def test_optional_string_set_parameter_fires(self):
        # Deferred ("Optional[Set[str]]") annotations are parsed and the
        # Optional wrapper looked through.
        src = (
            "def sweep(dead: 'Optional[Set[str]]'):\n"
            "    for host in dead:\n"
            "        kill(host)\n"
        )
        (f,) = only(lint_source(src, "simgrid/x.py"), self.RULE)
        assert f.line == 2

    def test_list_annotated_parameter_silent(self):
        src = (
            "from typing import List\n\n"
            "def assign(survivors: List[int]):\n"
            "    return [g(r) for r in survivors]\n"
        )
        assert lint_source(src, "mpi/x.py") == []

    def test_set_annotated_local_fires_despite_nonset_value(self):
        # The annotation is authoritative even when the assigned value is
        # opaque to expression analysis.
        src = (
            "def plan(ctx):\n"
            "    pending: set = ctx.pending()\n"
            "    for r in pending:\n"
            "        ship(r)\n"
        )
        (f,) = only(lint_source(src, "core/x.py"), self.RULE)
        assert f.line == 3

    def test_set_annotated_self_attribute_fires(self):
        src = (
            "from typing import Set\n\n"
            "class Tracker:\n"
            "    def __init__(self):\n"
            "        self.dead: Set[str] = set()\n"
            "    def victims(self):\n"
            "        return [kill(h) for h in self.dead]\n"
        )
        (f,) = only(lint_source(src, "simgrid/x.py"), self.RULE)
        assert f.line == 7
        assert "self.dead" in f.message

    def test_class_body_set_annotation_fires(self):
        src = (
            "class Registry:\n"
            "    members: frozenset\n"
            "    def dispatch_all(self):\n"
            "        for m in self.members:\n"
            "            m()\n"
        )
        (f,) = only(lint_source(src, "mpi/x.py"), self.RULE)
        assert f.line == 4

    def test_sorted_set_attribute_silent(self):
        src = (
            "from typing import Set\n\n"
            "class Tracker:\n"
            "    def __init__(self):\n"
            "        self.dead: Set[str] = set()\n"
            "    def victims(self):\n"
            "        return [kill(h) for h in sorted(self.dead)]\n"
        )
        assert lint_source(src, "simgrid/x.py") == []

    def test_dict_annotated_attribute_silent(self):
        src = (
            "from typing import Dict\n\n"
            "class Tracker:\n"
            "    def __init__(self):\n"
            "        self.seen: Dict[str, int] = {}\n"
            "    def walk(self):\n"
            "        return [h for h in self.seen]\n"
        )
        assert lint_source(src, "simgrid/x.py") == []


class TestFloatTimeEquality:
    RULE = "det-float-time-eq"

    def test_makespan_equality_fires(self):
        src = "if makespan == best_makespan:\n    tie()\n"
        (f,) = only(lint_source(src, "core/x.py"), self.RULE)
        assert (f.line, f.col) == (1, 3)

    def test_finish_times_max_fires(self):
        src = "ok = max(finish_times) != 0\n"
        (f,) = only(lint_source(src, "analysis/x.py"), self.RULE)
        assert f.line == 1

    def test_info_key_subscript_fires(self):
        src = "if result['makespan'] == 0:\n    skip()\n"
        (f,) = only(lint_source(src, "tomo/x.py"), self.RULE)
        assert f.line == 1

    def test_exact_quantities_silent(self):
        src = "if makespan_exact == other_exact:\n    tie()\n"
        assert lint_source(src, "core/x.py") == []

    def test_inequality_comparisons_silent(self):
        src = "if makespan < best_makespan:\n    improve()\n"
        assert lint_source(src, "core/x.py") == []


class TestPrimitiveNotYielded:
    RULE = "sim-yield-primitive"

    def test_unyielded_primitive_fires(self):
        src = (
            "from ..simgrid.engine import Hold\n\n"
            "def proc(sim):\n"
            "    Hold(1.0)\n"
        )
        (f,) = only(lint_source(src, "mpi/x.py"), self.RULE)
        assert (f.line, f.col) == (4, 4)
        assert "yield Hold" in f.message

    def test_yielded_primitive_silent(self):
        src = (
            "from ..simgrid.engine import Hold\n\n"
            "def proc(sim):\n"
            "    yield Hold(1.0)\n"
        )
        assert lint_source(src, "mpi/x.py") == []

    def test_module_attribute_form_fires(self):
        src = (
            "from ..simgrid import engine\n\n"
            "def proc(sim):\n"
            "    engine.Get(mbox)\n"
        )
        (f,) = only(lint_source(src, "monitor/x.py"), self.RULE)
        assert f.line == 4

    def test_unrelated_get_silent(self):
        # dict.get / config.Get from elsewhere must not trip the rule.
        src = "def f(d):\n    return d.get('x')\n"
        assert lint_source(src, "mpi/x.py") == []

    def test_engine_module_itself_exempt(self):
        src = "def _retry(self):\n    Hold(0.0)\n"
        assert lint_source(src, "simgrid/engine.py") == []


class TestSubscriberMutation:
    RULE = "sim-subscriber-mutation"

    def test_subscriber_calling_spawn_fires(self):
        src = (
            "class Restarter:\n"
            "    def __call__(self, event):\n"
            "        self.sim.spawn(replacement())\n"
        )
        (f,) = only(lint_source(src, "obs/x.py"), self.RULE)
        assert (f.line, f.col) == (3, 8)

    def test_subscriber_emitting_fires(self):
        src = "def on_event(event):\n    bus.emit('echo', event.t, event.actor)\n"
        (f,) = only(lint_source(src, "obs/x.py"), self.RULE)
        assert f.line == 2

    def test_subscriber_own_state_silent(self):
        src = (
            "class Log:\n"
            "    def __call__(self, event):\n"
            "        self.events.append(event)\n"
        )
        assert lint_source(src, "obs/x.py") == []

    def test_non_subscriber_signature_silent(self):
        src = "def driver(sim, event):\n    sim.spawn(event.proc)\n"
        assert lint_source(src, "obs/x.py") == []


class TestRecvWithoutTimeout:
    RULE = "sim-recv-timeout"

    def test_ft_function_recv_fires(self):
        src = (
            "def ft_scatterv(ctx, data, counts, root):\n"
            "    chunk = yield from ctx.recv(root)\n"
        )
        (f,) = only(lint_source(src, "mpi/x.py"), self.RULE)
        assert f.line == 2
        assert "timeout" in f.message

    def test_ft_function_recv_with_timeout_silent(self):
        src = (
            "def ft_scatterv(ctx, data, counts, root, patience):\n"
            "    chunk = yield from ctx.recv(root, timeout=patience)\n"
        )
        assert lint_source(src, "mpi/x.py") == []

    def test_plain_collective_recv_silent_in_mpi(self):
        src = "def scatterv(ctx, root):\n    chunk = yield from ctx.recv(root)\n"
        assert lint_source(src, "mpi/x.py") == []

    def test_monitor_recv_always_fires(self):
        src = "def heartbeat(ctx, peer):\n    msg = yield from ctx.recv_any()\n"
        (f,) = only(lint_source(src, "monitor/x.py"), self.RULE)
        assert f.line == 2


class TestEntryPointValidation:
    RULE = "con-validate-costs"

    def test_plan_scatter_without_check_valid_fires(self):
        src = (
            "def plan_scatter(problem, algorithm='auto'):\n"
            "    return solve(problem)\n"
        )
        (f,) = only(lint_source(src, "core/x.py"), self.RULE)
        assert (f.line, f.col) == (1, 0)

    def test_plan_scatter_with_check_valid_silent(self):
        src = (
            "def plan_scatter(problem, algorithm='auto'):\n"
            "    problem.check_valid()\n"
            "    return solve(problem)\n"
        )
        assert lint_source(src, "core/x.py") == []

    def test_other_functions_not_held_to_contract(self):
        src = "def helper(problem):\n    return solve(problem)\n"
        assert lint_source(src, "core/x.py") == []


class TestResultProfileInfo:
    RULE = "con-result-profile"

    def test_result_without_profile_fires(self):
        src = (
            "def solve_x(problem):\n"
            "    return DistributionResult(problem=problem, counts=c,\n"
            "                              makespan=m, algorithm='x')\n"
        )
        (f,) = only(lint_source(src, "core/x.py"), self.RULE)
        assert f.line == 2
        assert "stage_profile" in f.message

    def test_result_with_profile_silent(self):
        src = (
            "def solve_x(problem):\n"
            "    info = {}\n"
            "    profile = prof.as_info()\n"
            "    if profile is not None:\n"
            "        info['profile'] = profile\n"
            "    return DistributionResult(problem=problem, counts=c,\n"
            "                              makespan=m, algorithm='x', info=info)\n"
        )
        assert lint_source(src, "core/x.py") == []

    def test_profile_key_in_dict_literal_silent(self):
        src = (
            "def solve_x(problem):\n"
            "    return WeightedDistribution(problem, c, m, 'x',\n"
            "                                info={'profile': prof.as_info()})\n"
        )
        assert lint_source(src, "core/x.py") == []

    def test_distribution_module_exempt(self):
        src = (
            "def evaluate(problem):\n"
            "    return DistributionResult(problem=problem, counts=c,\n"
            "                              makespan=m, algorithm='x')\n"
        )
        assert lint_source(src, "core/distribution.py") == []
