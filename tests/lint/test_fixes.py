"""Autofix (``--fix``) tests: rewrite, relint-clean, idempotence, diff."""

import random

from repro.lint import lint_source
from repro.lint.fixes import FIXABLE_RULES, fix_file, fix_source, render_diff

REL = "core/fixture.py"

FIXABLE = '''\
import random

def schedule(names, picks):
    rng = random.Random()
    order = []
    for name in {"b", "a", "c"}:
        order.append(name)
    pool = {"x"} | picks
    chosen = [p for p in pool]
    return rng, order, chosen
'''


class TestFixSource:
    def test_rewrites_and_relints_clean(self):
        fixed, applied = fix_source(FIXABLE, REL)
        assert applied == 3
        assert "random.Random(0)" in fixed
        assert 'sorted({"b", "a", "c"})' in fixed
        assert "[p for p in sorted(pool)]" in fixed
        remaining = [
            f for f in lint_source(fixed, REL) if f.rule in FIXABLE_RULES
        ]
        assert remaining == []

    def test_idempotent(self):
        once, applied_once = fix_source(FIXABLE, REL)
        twice, applied_twice = fix_source(once, REL)
        assert applied_once == 3
        assert applied_twice == 0
        assert twice == once

    def test_fix_preserves_behavior(self):
        env_before, env_after = {}, {}
        exec(FIXABLE, env_before)
        fixed, _ = fix_source(FIXABLE, REL)
        exec(fixed, env_after)
        _, order, chosen = env_after["schedule"](["a"], {"y"})
        assert order == ["a", "b", "c"]
        assert chosen == sorted({"x", "y"})
        rng, _, _ = env_after["schedule"]([], set())
        assert rng.random() == random.Random(0).random()

    def test_values_keys_variant_left_alone(self):
        src = (
            "def pick(table):\n"
            "    return max(v for v in table.values())\n"
        )
        findings = [f for f in lint_source(src, REL)
                    if f.rule == "det-unordered-iter"]
        fixed, applied = fix_source(src, REL)
        # The rule may or may not fire on this shape, but the fixer must
        # never rewrite a .values() iterable: the right key is a design
        # choice.
        assert applied == 0 or not findings
        assert fixed == src

    def test_global_generator_call_left_alone(self):
        src = (
            "import random\n\n"
            "def shuffle(items):\n"
            "    random.shuffle(items)\n"
        )
        fixed, applied = fix_source(src, REL)
        assert applied == 0
        assert fixed == src

    def test_seeded_constructor_untouched(self):
        src = (
            "import random\n\n"
            "def make():\n"
            "    return random.Random(42)\n"
        )
        fixed, applied = fix_source(src, REL)
        assert applied == 0
        assert fixed == src

    def test_suppressed_finding_not_rewritten(self):
        src = (
            "import random\n\n"
            "def make():\n"
            "    return random.Random()  # lint: disable=det-unseeded-random\n"
        )
        fixed, applied = fix_source(src, REL)
        assert applied == 0
        assert fixed == src

    def test_out_of_scope_path_untouched(self):
        fixed, applied = fix_source(FIXABLE, "tests/fixture.py")
        assert applied == 0
        assert fixed == FIXABLE

    def test_rules_filter_restricts_fixes(self):
        fixed, applied = fix_source(
            FIXABLE, REL, rules=["det-unseeded-random"]
        )
        assert applied == 1
        assert "random.Random(0)" in fixed
        assert "sorted(" not in fixed

    def test_multiline_set_expression(self):
        src = (
            "def order(extra):\n"
            "    return [n for n in ({'a', 'b'}\n"
            "                        | extra)]\n"
        )
        fixed, applied = fix_source(src, REL)
        assert applied == 1
        compiled = {}
        exec(fixed, compiled)
        assert compiled["order"]({"c"}) == ["a", "b", "c"]


class TestFixFile:
    def test_write_and_preview_modes(self, tmp_path):
        target = tmp_path / "core" / "demo.py"
        target.parent.mkdir()
        target.write_text(FIXABLE)

        original, fixed, applied = fix_file(str(target), write=False)
        assert applied == 3
        assert target.read_text() == FIXABLE  # preview: no write

        diff = render_diff(str(target), original, fixed)
        assert diff.startswith(f"a/{target}\n".join(["--- ", ""]).rstrip("\n"))
        assert "+    rng = random.Random(0)" in diff
        assert "-    rng = random.Random()" in diff

        _, fixed2, applied2 = fix_file(str(target), write=True)
        assert applied2 == 3
        assert target.read_text() == fixed2 == fixed

        # Idempotent on disk too.
        _, _, applied3 = fix_file(str(target), write=True)
        assert applied3 == 0

    def test_render_diff_empty_when_unchanged(self):
        assert render_diff("x.py", "a\n", "a\n") == ""
