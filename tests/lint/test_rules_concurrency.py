"""Firing + silent fixtures for the four conc-* rules.

Each rule gets at least one fixture that fires and one structurally
close fixture that stays silent; the lock-inversion fixture at the
bottom is the same shape the runtime sanitizer test drives with two real
threads (tests/lint/test_runtime.py), so the static and dynamic halves
are checked against the same planted bug.
"""

import pytest

from repro.lint import lint_project_sources, lint_source

RULES = [
    "conc-lock-order",
    "conc-unguarded-shared-state",
    "conc-blocking-under-lock",
    "conc-event-wait-unguarded-predicate",
]


def _rules_of(findings):
    return [f.rule for f in findings]


def lint(src, relpath="core/fixture.py", **kw):
    return lint_source(src, relpath, **kw)


# ---------------------------------------------------------------------------
# conc-lock-order
# ---------------------------------------------------------------------------

INVERSION = '''
import threading

class Transfer:
    def __init__(self):
        self._accounts = threading.Lock()
        self._journal = threading.Lock()

    def debit(self):
        with self._accounts:
            with self._journal:
                pass

    def audit(self):
        with self._journal:
            with self._accounts:
                pass
'''

NESTED_SAME_ORDER = '''
import threading

class Transfer:
    def __init__(self):
        self._accounts = threading.Lock()
        self._journal = threading.Lock()

    def debit(self):
        with self._accounts:
            with self._journal:
                pass

    def audit(self):
        with self._accounts:
            with self._journal:
                pass
'''

REENTRANT_VIA_CALL = '''
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()

    def stats(self):
        with self._lock:
            return 1

    def snapshot(self):
        with self._lock:
            return self.stats()
'''

CALLBACK_NOT_ATTRIBUTED = '''
import threading

class Dispatcher:
    def __init__(self):
        self._lock = threading.Lock()

    def locked_op(self):
        with self._lock:
            return 1

    def dispatch(self):
        def on_done():
            # Runs on a worker thread later, NOT under self._lock.
            return self.locked_op()
        with self._lock:
            callback = on_done
        return callback
'''


class TestLockOrder:
    def test_inversion_fires_on_both_edges(self):
        findings = [f for f in lint(INVERSION)
                    if f.rule == "conc-lock-order"]
        assert len(findings) == 2
        assert all("cycle" in f.message for f in findings)

    def test_consistent_order_is_silent(self):
        assert "conc-lock-order" not in _rules_of(lint(NESTED_SAME_ORDER))

    def test_reentrant_self_deadlock_through_call_graph(self):
        findings = [f for f in lint(REENTRANT_VIA_CALL)
                    if f.rule == "conc-lock-order"]
        assert len(findings) == 1
        assert "re-acquire" in findings[0].message

    def test_closure_calls_not_attributed_to_definer(self):
        assert "conc-lock-order" not in _rules_of(
            lint(CALLBACK_NOT_ATTRIBUTED)
        )

    def test_cross_file_inversion(self):
        mod_a = (
            "import threading\n"
            "from .b import helper\n\n"
            "A = threading.Lock()\n\n"
            "def outer():\n"
            "    with A:\n"
            "        helper()\n"
        )
        mod_b = (
            "import threading\n"
            "from .a import A\n\n"
            "B = threading.Lock()\n\n"
            "def helper():\n"
            "    with B:\n"
            "        pass\n\n"
            "def other():\n"
            "    with B:\n"
            "        with A:\n"
            "            pass\n"
        )
        findings = lint_project_sources(
            [("repro/pkg/a.py", mod_a), ("repro/pkg/b.py", mod_b)]
        )
        hits = [f for f in findings if f.rule == "conc-lock-order"]
        assert {f.path for f in hits} == {"repro/pkg/a.py", "repro/pkg/b.py"}
        assert any("via call to" in f.message for f in hits)

    def test_suppression_silences_and_is_counted_used(self):
        suppressed = INVERSION.replace(
            "        with self._journal:\n                pass",
            "        with self._journal:  # lint: disable=conc-lock-order\n"
            "                pass",
            1,
        )
        # Suppressing one edge leaves the other reported.
        findings = [f for f in lint(suppressed)
                    if f.rule in ("conc-lock-order", "meta-unused-suppression")]
        assert _rules_of(findings).count("conc-lock-order") == 1
        assert "meta-unused-suppression" not in _rules_of(findings)


# ---------------------------------------------------------------------------
# conc-unguarded-shared-state
# ---------------------------------------------------------------------------

UNGUARDED = '''
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def inc(self):
        with self._lock:
            self.hits += 1

    def reset(self):
        self.hits = 0
'''

ALL_GUARDED = '''
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def inc(self):
        with self._lock:
            self.hits += 1

    def reset(self):
        with self._lock:
            self.hits = 0
'''

NEVER_GUARDED = '''
import threading

class Config:
    def __init__(self):
        self._lock = threading.Lock()
        self.flag = False

    def enable(self):
        self.flag = True

    def disable(self):
        self.flag = False
'''


class TestUnguardedSharedState:
    def test_mixed_guarding_fires_at_unguarded_site(self):
        findings = [f for f in lint(UNGUARDED)
                    if f.rule == "conc-unguarded-shared-state"]
        assert len(findings) == 1
        assert findings[0].line == 14
        assert "self.hits" in findings[0].message

    def test_fully_guarded_is_silent(self):
        assert "conc-unguarded-shared-state" not in _rules_of(
            lint(ALL_GUARDED)
        )

    def test_thread_confined_attribute_is_silent(self):
        # Never written under the lock: the rule assumes confinement is
        # intentional rather than flagging every lock-owning class.
        assert "conc-unguarded-shared-state" not in _rules_of(
            lint(NEVER_GUARDED)
        )


# ---------------------------------------------------------------------------
# conc-blocking-under-lock
# ---------------------------------------------------------------------------

WAIT_UNDER_LOCK = '''
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._event = threading.Event()

    def get(self):
        with self._lock:
            self._event.wait()
            return 1
'''

WAIT_OUTSIDE_LOCK = '''
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._event = threading.Event()

    def get(self):
        with self._lock:
            ready = True
        if not ready:
            self._event.wait()
        return 1
'''

SOLVER_UNDER_LOCK = '''
import threading
from repro.core.solver import plan_scatter

class Planner:
    def __init__(self):
        self._lock = threading.Lock()

    def plan(self, problem):
        with self._lock:
            return plan_scatter(problem)
'''

TRANSITIVE_BLOCKING = '''
import threading

class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._event = threading.Event()

    def _sync(self):
        self._event.wait()

    def run(self):
        with self._lock:
            self._sync()
'''

RESULT_UNDER_LOCK = '''
import threading

class Gateway:
    def __init__(self):
        self._lock = threading.Lock()

    def fetch(self, pool, job):
        with self._lock:
            return pool.submit(job).result()
'''


class TestBlockingUnderLock:
    def test_event_wait_under_lock_fires(self):
        findings = [f for f in lint(WAIT_UNDER_LOCK)
                    if f.rule == "conc-blocking-under-lock"]
        assert len(findings) == 1
        assert "wait()" in findings[0].message

    def test_wait_outside_lock_is_silent(self):
        assert "conc-blocking-under-lock" not in _rules_of(
            lint(WAIT_OUTSIDE_LOCK)
        )

    def test_solver_entry_point_under_lock_fires(self):
        findings = [f for f in lint(SOLVER_UNDER_LOCK)
                    if f.rule == "conc-blocking-under-lock"]
        assert len(findings) == 1
        assert "plan_scatter" in findings[0].message

    def test_transitive_blocking_through_call_graph(self):
        findings = [f for f in lint(TRANSITIVE_BLOCKING)
                    if f.rule == "conc-blocking-under-lock"]
        assert len(findings) == 1
        assert "may block" in findings[0].message

    def test_future_result_under_lock_fires(self):
        findings = [f for f in lint(RESULT_UNDER_LOCK)
                    if f.rule == "conc-blocking-under-lock"]
        assert len(findings) == 1
        assert ".result()" in findings[0].message


# ---------------------------------------------------------------------------
# conc-event-wait-unguarded-predicate
# ---------------------------------------------------------------------------

LOST_WAKEUP = '''
import threading

class Waiter:
    def __init__(self):
        self._lock = threading.Lock()
        self._event = threading.Event()
        self.ready = False

    def wait_ready(self):
        while not self.ready:
            self._event.wait(0.1)
'''

WHILE_TRUE_NO_RECHECK = '''
import threading

class Waiter:
    def __init__(self):
        self._event = threading.Event()

    def wait_forever(self):
        while True:
            self._event.wait(0.1)
'''

SINGLE_FLIGHT_SHAPE = '''
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._event = threading.Event()
        self.value = None

    def get(self):
        while True:
            with self._lock:
                if self.value is not None:
                    return self.value
            self._event.wait()
'''

PLAIN_WAIT_NO_LOOP = '''
import threading

class Ticket:
    def __init__(self):
        self._event = threading.Event()

    def result(self):
        self._event.wait()
        return 1
'''


class TestEventWaitUnguardedPredicate:
    def test_lost_wakeup_shape_fires(self):
        findings = [f for f in lint(LOST_WAKEUP)
                    if f.rule == "conc-event-wait-unguarded-predicate"]
        assert len(findings) == 1
        assert "lost wakeup" in findings[0].message

    def test_while_true_without_locked_recheck_fires(self):
        findings = [f for f in lint(WHILE_TRUE_NO_RECHECK)
                    if f.rule == "conc-event-wait-unguarded-predicate"]
        assert len(findings) == 1
        assert "while-True" in findings[0].message

    def test_single_flight_recheck_under_lock_is_silent(self):
        # The CostTableCache.table shape: loop re-checks under the lock
        # before waiting again.
        assert "conc-event-wait-unguarded-predicate" not in _rules_of(
            lint(SINGLE_FLIGHT_SHAPE)
        )

    def test_plain_wait_without_loop_is_silent(self):
        assert "conc-event-wait-unguarded-predicate" not in _rules_of(
            lint(PLAIN_WAIT_NO_LOOP)
        )


# ---------------------------------------------------------------------------
# Scoping: the conc rules stay out of tests/benchmarks/examples
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("relpath", [
    "benchmarks/bench_locks.py", "tests/test_locks.py", "examples/demo.py",
])
def test_conc_rules_excluded_outside_shipped_tree(relpath):
    findings = lint_source(INVERSION, relpath)
    assert not any(f.rule.startswith("conc-") for f in findings)
