"""Engine mechanics: registry, scoping, suppressions, reporters, runner."""

import json

import pytest

from repro.lint import (
    Finding,
    all_rules,
    get_rule,
    lint_source,
    render_findings,
    render_findings_json,
    run_lint,
)
from repro.lint.core import META_UNUSED, discover_files, package_relpath

WALL_CLOCK = "import time\n\nt = time.time()\n"


class TestRegistry:
    def test_thirteen_rules_registered(self):
        rules = all_rules()
        assert len(rules) == 13  # + meta-unused-suppression = 14 ids total
        assert len(set(rules)) == len(rules)
        families = {cls.family for cls in rules.values()}
        assert families == {
            "determinism", "simulation", "contracts", "concurrency",
        }

    def test_expected_rule_ids(self):
        assert set(all_rules()) == {
            "det-unseeded-random",
            "det-wall-clock",
            "det-unordered-iter",
            "det-float-time-eq",
            "sim-yield-primitive",
            "sim-subscriber-mutation",
            "sim-recv-timeout",
            "con-validate-costs",
            "con-result-profile",
            "conc-lock-order",
            "conc-unguarded-shared-state",
            "conc-blocking-under-lock",
            "conc-event-wait-unguarded-predicate",
        }

    def test_get_rule_unknown_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="known rules"):
            get_rule("no-such-rule")

    def test_meta_rule_not_instantiable_from_registry(self):
        with pytest.raises(KeyError):
            get_rule(META_UNUSED)


class TestPathScoping:
    def test_rule_fires_inside_included_dir(self):
        findings = lint_source(WALL_CLOCK, "simgrid/network.py")
        assert [f.rule for f in findings] == ["det-wall-clock"]

    def test_rule_silent_in_excluded_profiler(self):
        assert lint_source(WALL_CLOCK, "obs/profiler.py") == []

    def test_rule_silent_under_benchmarks(self):
        assert lint_source(WALL_CLOCK, "benchmarks/bench_x.py") == []

    def test_package_relpath_strips_to_repro(self):
        assert package_relpath("/x/y/src/repro/core/solver.py") == "core/solver.py"

    def test_package_relpath_outside_package(self):
        assert package_relpath("./benchmarks/bench_x.py") == "benchmarks/bench_x.py"


class TestSuppressions:
    def test_line_suppression_silences_one_line(self):
        src = (
            "import time\n"
            "a = time.time()  # lint: disable=det-wall-clock\n"
            "b = time.time()\n"
        )
        findings = lint_source(src, "core/x.py")
        assert [(f.rule, f.line) for f in findings] == [("det-wall-clock", 3)]

    def test_file_suppression_silences_whole_file(self):
        src = (
            "# lint: disable-file=det-wall-clock\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        assert lint_source(src, "core/x.py") == []

    def test_multiple_ids_in_one_comment(self):
        src = (
            "import time\n"
            "import random\n"
            "x = (time.time(), random.random())"
            "  # lint: disable=det-wall-clock, det-unseeded-random\n"
        )
        assert lint_source(src, "core/x.py") == []

    def test_unused_suppression_reported(self):
        src = "x = 1  # lint: disable=det-wall-clock\n"
        findings = lint_source(src, "core/x.py")
        assert [f.rule for f in findings] == [META_UNUSED]
        assert "never fired" in findings[0].message

    def test_unknown_rule_in_suppression_reported(self):
        src = "import time\nx = time.time()  # lint: disable=det-wall-clokc\n"
        findings = lint_source(src, "core/x.py")
        rules = sorted(f.rule for f in findings)
        assert rules == ["det-wall-clock", META_UNUSED]
        meta = next(f for f in findings if f.rule == META_UNUSED)
        assert "unknown rule" in meta.message

    def test_suppression_in_docstring_is_inert(self):
        # Only real COMMENT tokens count; docs *showing* the syntax do not
        # suppress anything (nor count as unused suppressions).
        src = '"""Example::\n\n    x  # lint: disable=det-wall-clock\n"""\nx = 1\n'
        assert lint_source(src, "core/x.py") == []

    def test_check_suppressions_flag_off(self):
        src = "x = 1  # lint: disable=det-wall-clock\n"
        assert lint_source(src, "core/x.py", check_suppressions=False) == []


class TestReporters:
    def test_clean_message(self):
        assert render_findings([]) == "clean: no lint findings"

    def test_human_lines_and_summary(self):
        findings = lint_source(WALL_CLOCK, "core/x.py")
        text = render_findings(findings)
        assert "core/x.py:3:4: det-wall-clock" in text
        assert "1 finding (det-wall-clock x1)" in text

    def test_json_document(self):
        findings = lint_source(WALL_CLOCK, "core/x.py")
        doc = json.loads(render_findings_json(findings))
        assert doc["schema"] == "repro-lint/v1"
        assert doc["count"] == 1
        assert doc["by_rule"] == {"det-wall-clock": 1}
        assert doc["findings"][0]["line"] == 3
        assert doc["findings"][0]["rule"] == "det-wall-clock"

    def test_finding_sort_key_orders_by_location(self):
        a = Finding("r", "a.py", 2, 0, "m")
        b = Finding("r", "a.py", 10, 0, "m")
        c = Finding("r", "b.py", 1, 0, "m")
        assert sorted([c, b, a], key=Finding.sort_key) == [a, b, c]


class TestRunner:
    def test_run_lint_on_tmp_tree(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(WALL_CLOCK)
        (pkg / "good.py").write_text("x = 1\n")
        (pkg / "__pycache__").mkdir()
        (pkg / "__pycache__" / "ignored.py").write_text(WALL_CLOCK)
        findings = run_lint([str(tmp_path)])
        assert [f.rule for f in findings] == ["det-wall-clock"]
        assert findings[0].path.endswith("bad.py")

    def test_rule_filter(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(WALL_CLOCK)
        assert run_lint([str(tmp_path)], rules=["det-unseeded-random"]) == []
        assert len(run_lint([str(tmp_path)], rules=["det-wall-clock"])) == 1

    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "broken.py").write_text("def f(:\n")
        findings = run_lint([str(tmp_path)])
        assert [f.rule for f in findings] == ["parse-error"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            discover_files(["/no/such/dir"])
