"""ProjectContext tests: symbol table, aliases, call graph, receivers."""

import ast

from repro.lint.core import FileContext
from repro.lint.project import ProjectContext, module_name_for


def _project(*sources):
    """Build a ProjectContext from ``(relpath, source)`` pairs."""
    return ProjectContext(
        [FileContext(rel, src, relpath=rel) for rel, src in sources]
    )


class TestModuleNames:
    def test_package_relative_path(self):
        assert module_name_for("core/costs.py") == "repro.core.costs"

    def test_init_names_its_package(self):
        assert module_name_for("obs/__init__.py") == "repro.obs"

    def test_repro_prefix_not_doubled(self):
        assert module_name_for("repro/serve/cache.py") == "repro.serve.cache"

    def test_bare_init_is_package_root(self):
        assert module_name_for("__init__.py") == "repro"


class TestSymbolTable:
    def test_classes_functions_and_methods(self):
        project = _project((
            "core/demo.py",
            "class Planner:\n"
            "    def plan(self):\n"
            "        return 1\n\n"
            "def helper():\n"
            "    return 2\n",
        ))
        cls = project.classes["repro.core.demo.Planner"]
        assert "plan" in cls.methods
        plan = project.functions["repro.core.demo.Planner.plan"]
        assert plan.owner == "repro.core.demo.Planner"
        helper = project.functions["repro.core.demo.helper"]
        assert helper.owner is None
        assert helper.name == "helper"

    def test_global_instances_record_constructor(self):
        project = _project((
            "obs/reg.py",
            "class Registry:\n"
            "    pass\n\n"
            "METRICS = Registry()\n",
        ))
        assert (
            project.global_instances["repro.obs.reg.METRICS"]
            == "repro.obs.reg.Registry"
        )

    def test_global_lock_instances_recorded(self):
        project = _project((
            "core/locks.py",
            "import threading\n\nGUARD = threading.Lock()\n",
        ))
        assert (
            project.global_instances["repro.core.locks.GUARD"]
            == "threading.Lock"
        )

    def test_make_lock_maps_to_threading_lock(self):
        project = _project((
            "serve/cache.py",
            "from repro.lint.runtime import make_lock\n\n"
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._lock = make_lock('Cache._lock')\n",
        ))
        cls = project.classes["repro.serve.cache.Cache"]
        assert cls.attr_types["_lock"] == ("threading.Lock",)
        assert project.class_lock_like("repro.serve.cache.Cache") == {"_lock"}

    def test_lock_attr_inherited_from_base(self):
        project = _project((
            "core/base.py",
            "import threading\n\n"
            "class Base:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n",
        ), (
            "core/child.py",
            "from .base import Base\n\n"
            "class Child(Base):\n"
            "    pass\n",
        ))
        child = project.classes["repro.core.child.Child"]
        assert child.bases == ("repro.core.base.Base",)
        assert project.class_lock_like("repro.core.child.Child") == {"_lock"}


class TestAliases:
    def test_relative_import_resolution(self):
        project = _project((
            "serve/service.py",
            "from ..core.solver import plan_scatter\n",
        ))
        aliases = project.abs_aliases["repro.serve.service"]
        assert aliases["plan_scatter"] == "repro.core.solver.plan_scatter"

    def test_package_init_relative_import(self):
        # Inside ``serve/__init__.py``, ``.cache`` is serve.cache (one
        # fewer hop than from a sibling module).
        project = _project((
            "serve/__init__.py",
            "from .cache import PlanCache\n",
        ))
        aliases = project.abs_aliases["repro.serve"]
        assert aliases["PlanCache"] == "repro.serve.cache.PlanCache"

    def test_absolute_import_alias(self):
        project = _project((
            "core/demo.py",
            "import repro.obs.metrics as obs_metrics\n",
        ))
        aliases = project.abs_aliases["repro.core.demo"]
        assert aliases["obs_metrics"] == "repro.obs.metrics"


class TestCallGraph:
    def test_cross_module_function_call_resolved(self):
        project = _project((
            "core/solver.py",
            "def plan_scatter(problem):\n"
            "    return problem\n",
        ), (
            "serve/service.py",
            "from ..core.solver import plan_scatter\n\n"
            "def serve(problem):\n"
            "    return plan_scatter(problem)\n",
        ))
        sites = project.calls["repro.serve.service.serve"]
        assert [s.callee for s in sites] == ["repro.core.solver.plan_scatter"]

    def test_self_method_call_resolved(self):
        project = _project((
            "core/demo.py",
            "class Box:\n"
            "    def inner(self):\n"
            "        return 1\n\n"
            "    def outer(self):\n"
            "        return self.inner()\n",
        ))
        sites = project.calls["repro.core.demo.Box.outer"]
        assert [s.callee for s in sites] == ["repro.core.demo.Box.inner"]

    def test_constructor_call_resolves_to_init(self):
        project = _project((
            "core/demo.py",
            "class Box:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n\n"
            "def build():\n"
            "    return Box()\n",
        ))
        sites = project.calls["repro.core.demo.build"]
        assert [s.callee for s in sites] == ["repro.core.demo.Box.__init__"]

    def test_global_instance_method_call_resolved(self):
        project = _project((
            "obs/reg.py",
            "class Registry:\n"
            "    def counter(self, name):\n"
            "        return name\n\n"
            "METRICS = Registry()\n",
        ), (
            "core/demo.py",
            "from ..obs.reg import METRICS\n\n"
            "def bump():\n"
            "    METRICS.counter('x')\n",
        ))
        sites = project.calls["repro.core.demo.bump"]
        assert [s.callee for s in sites] == ["repro.obs.reg.Registry.counter"]

    def test_local_variable_type_inference(self):
        project = _project((
            "core/demo.py",
            "class Box:\n"
            "    def poke(self):\n"
            "        return 1\n\n"
            "def use():\n"
            "    box = Box()\n"
            "    return box.poke()\n",
        ))
        sites = project.calls["repro.core.demo.use"]
        assert "repro.core.demo.Box.poke" in [s.callee for s in sites]

    def test_chained_call_via_return_annotation(self):
        project = _project((
            "core/demo.py",
            "class Box:\n"
            "    def poke(self):\n"
            "        return 1\n\n"
            "def build() -> 'Box':\n"
            "    return Box()\n\n"
            "def use():\n"
            "    return build().poke()\n",
        ))
        sites = project.calls["repro.core.demo.use"]
        assert "repro.core.demo.Box.poke" in [s.callee for s in sites]

    def test_nested_def_calls_not_attributed_to_outer(self):
        project = _project((
            "core/demo.py",
            "def inner_target():\n"
            "    return 1\n\n"
            "def outer():\n"
            "    def closure():\n"
            "        return inner_target()\n"
            "    return closure\n",
        ))
        assert project.calls["repro.core.demo.outer"] == []

    def test_every_function_has_a_calls_entry(self):
        project = _project((
            "core/demo.py",
            "def leaf():\n"
            "    return 1\n",
        ))
        assert project.calls["repro.core.demo.leaf"] == []


class TestReceiverTypes:
    def test_self_resolves_to_owner(self):
        project = _project((
            "core/demo.py",
            "class Box:\n"
            "    def poke(self):\n"
            "        return self\n",
        ))
        info = project.functions["repro.core.demo.Box.poke"]
        recv = ast.parse("self").body[0].value
        assert project.receiver_types(info, recv, {}) == {
            "repro.core.demo.Box"
        }

    def test_self_attr_chain_via_attr_types(self):
        project = _project((
            "serve/cache.py",
            "class Cache:\n"
            "    def get(self):\n"
            "        return 1\n",
        ), (
            "serve/service.py",
            "from .cache import Cache\n\n"
            "class Service:\n"
            "    def __init__(self):\n"
            "        self.cache = Cache()\n\n"
            "    def lookup(self):\n"
            "        return self.cache.get()\n",
        ))
        sites = project.calls["repro.serve.service.Service.lookup"]
        assert [s.callee for s in sites] == ["repro.serve.cache.Cache.get"]
