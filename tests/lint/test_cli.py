"""The ``repro-scatter lint`` subcommand: exit codes, output modes, and
the acceptance gate that the shipped source tree itself lints clean."""

import json
import os

import repro
from repro.cli import main

CLEAN = "x = 1\n"
DIRTY = "import time\n\nt = time.time()\n"


def write_tree(tmp_path, source):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    target = pkg / "mod.py"
    target.write_text(source)
    return str(tmp_path)


class TestLintCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        assert main(["lint", write_tree(tmp_path, CLEAN)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        assert main(["lint", write_tree(tmp_path, DIRTY)]) == 1
        out = capsys.readouterr().out
        assert "det-wall-clock" in out
        assert "mod.py:3:4" in out

    def test_json_output(self, tmp_path, capsys):
        assert main(["lint", "--json", write_tree(tmp_path, DIRTY)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-lint/v1"
        assert doc["by_rule"] == {"det-wall-clock": 1}

    def test_rule_filter(self, tmp_path, capsys):
        root = write_tree(tmp_path, DIRTY)
        assert main(["lint", "--rule", "det-unseeded-random", root]) == 0
        capsys.readouterr()
        assert main(["lint", "--rule", "det-wall-clock", root]) == 1

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        root = write_tree(tmp_path, CLEAN)
        assert main(["lint", "--rule", "not-a-rule", root]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/no/such/path"]) == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "det-wall-clock" in out
        assert "meta-unused-suppression" in out
        assert "[determinism]" in out


FIXABLE = "import random\n\nrng = random.Random()\n"


class TestFixFlags:
    def test_diff_previews_without_writing(self, tmp_path, capsys):
        root = write_tree(tmp_path, FIXABLE)
        assert main(["lint", "--diff", root]) == 0
        captured = capsys.readouterr()
        assert "+rng = random.Random(0)" in captured.out
        assert "-rng = random.Random()" in captured.out
        assert "would apply 1 rewrite(s)" in captured.err
        assert (tmp_path / "repro" / "core" / "mod.py").read_text() == FIXABLE

    def test_fix_rewrites_in_place_and_relints(self, tmp_path, capsys):
        root = write_tree(tmp_path, FIXABLE)
        assert main(["lint", "--fix", root]) == 0
        captured = capsys.readouterr()
        assert "applied 1 rewrite(s)" in captured.err
        assert "clean" in captured.out
        target = tmp_path / "repro" / "core" / "mod.py"
        assert "random.Random(0)" in target.read_text()

    def test_fix_is_idempotent(self, tmp_path, capsys):
        root = write_tree(tmp_path, FIXABLE)
        assert main(["lint", "--fix", root]) == 0
        capsys.readouterr()
        assert main(["lint", "--fix", root]) == 0
        assert "applied 0 rewrite(s)" in capsys.readouterr().err

    def test_fix_missing_path_exits_two(self, capsys):
        assert main(["lint", "--fix", "/no/such/path"]) == 2
        assert "error" in capsys.readouterr().err


class TestShippedTreeIsClean:
    def test_package_lints_clean(self, capsys):
        """Acceptance criterion: `repro-scatter lint src/` exits 0."""
        pkg_dir = os.path.dirname(os.path.abspath(repro.__file__))
        assert main(["lint", pkg_dir]) == 0, capsys.readouterr().out
