"""Tests for solver profiling hooks (repro.obs.profiler)."""

import pytest

from repro.obs import StageProfile, profiling_enabled, set_profiling, stage_profile


@pytest.fixture
def profiling_on():
    old = set_profiling(True)
    yield
    set_profiling(old)


@pytest.fixture
def profiling_off():
    old = set_profiling(False)
    yield
    set_profiling(old)


class TestStageProfile:
    def test_accumulates_stage_times(self):
        prof = StageProfile()
        with prof.stage("a"):
            pass
        with prof.stage("a"):
            pass
        with prof.stage("b"):
            pass
        assert set(prof.stages) == {"a", "b"}
        assert prof.stages["a"] >= 0.0
        assert prof.total() == pytest.approx(sum(prof.stages.values()))

    def test_notes_land_in_info(self):
        prof = StageProfile()
        with prof.stage("rows"):
            pass
        prof.note(table_entries=42)
        info = prof.as_info()
        assert info["table_entries"] == 42
        assert "rows" in info["stages_s"]
        assert info["total_s"] == prof.total()

    def test_disabled_profile_is_inert(self):
        prof = StageProfile(enabled=False)
        with prof.stage("a"):
            pass
        prof.note(x=1)
        assert prof.stages == {} and prof.notes == {}
        assert prof.as_info() is None

    def test_exception_still_records(self):
        prof = StageProfile()
        with pytest.raises(RuntimeError):
            with prof.stage("boom"):
                raise RuntimeError("x")
        assert "boom" in prof.stages


class TestGlobalToggle:
    def test_stage_profile_respects_toggle(self, profiling_off):
        assert not profiling_enabled()
        prof = stage_profile()
        assert prof.as_info() is None
        # the shared null object is reused — zero allocation when disabled
        assert stage_profile() is prof

    def test_set_profiling_returns_old(self, profiling_on):
        assert set_profiling(False) is True
        assert set_profiling(True) is False


class TestSolverIntegration:
    def problem(self):
        from repro.core.distribution import Processor, ScatterProblem

        return ScatterProblem(
            [
                Processor.linear("w1", alpha=0.02, beta=2e-4),
                Processor.linear("w2", alpha=0.05, beta=1e-4),
                Processor.linear("root", alpha=0.03, beta=0.0),
            ],
            200,
        )

    @pytest.mark.parametrize("solver_name", ["basic", "optimized", "fast"])
    def test_solvers_attach_profile(self, profiling_on, solver_name):
        from repro.core.dp_basic import solve_dp_basic
        from repro.core.dp_fast import solve_dp_fast
        from repro.core.dp_optimized import solve_dp_optimized

        solver = {
            "basic": solve_dp_basic,
            "optimized": solve_dp_optimized,
            "fast": solve_dp_fast,
        }[solver_name]
        result = solver(self.problem())
        profile = result.info["profile"]
        assert set(profile["stages_s"]) >= {"cost_tables", "dp_rows", "reconstruct"}
        assert profile["total_s"] >= 0.0
        assert profile["table_entries"] > 0

    def test_disabled_removes_profile_but_not_result(self, profiling_off):
        from repro.core.dp_fast import solve_dp_fast

        result = solve_dp_fast(self.problem())
        assert "profile" not in (result.info or {})
        assert result.makespan > 0

    def test_profile_does_not_change_solution(self):
        from repro.core.dp_fast import solve_dp_fast

        old = set_profiling(True)
        try:
            with_prof = solve_dp_fast(self.problem())
            set_profiling(False)
            without = solve_dp_fast(self.problem())
        finally:
            set_profiling(old)
        assert with_prof.counts == without.counts
        assert with_prof.makespan == without.makespan


class TestAllSolversCarryProfile:
    """The con-result-profile contract: every result carries stage timings."""

    def problem(self):
        from repro.core.distribution import Processor, ScatterProblem

        return ScatterProblem(
            [
                Processor.linear("w1", alpha=0.02, beta=2e-4),
                Processor.linear("w2", alpha=0.05, beta=1e-4),
                Processor.linear("root", alpha=0.03, beta=0.0),
            ],
            200,
        )

    def weighted_problem(self):
        import numpy as np

        from repro.core.distribution import Processor
        from repro.core.weighted import WeightedScatterProblem

        procs = [
            Processor.linear("w1", alpha=0.02, beta=2e-4),
            Processor.linear("w2", alpha=0.05, beta=1e-4),
            Processor.linear("root", alpha=0.03, beta=0.0),
        ]
        return WeightedScatterProblem(procs, np.ones(60), comm_mode="count")

    def test_closed_form_stages(self, profiling_on):
        from repro.core.closed_form import solve_closed_form

        profile = solve_closed_form(self.problem()).info["profile"]
        assert set(profile["stages_s"]) == {"rational_solve", "rounding", "evaluate"}

    def test_lp_heuristic_stages(self, profiling_on):
        from repro.core.heuristic import solve_heuristic

        profile = solve_heuristic(self.problem()).info["profile"]
        assert set(profile["stages_s"]) == {"lp_solve", "rounding", "evaluate"}
        assert profile["backend"] == "exact"

    def test_uniform_stages(self, profiling_on):
        from repro.core.solver import solve_uniform

        profile = solve_uniform(self.problem()).info["profile"]
        assert set(profile["stages_s"]) == {"evaluate"}

    def test_weighted_dp_stages(self, profiling_on):
        from repro.core.weighted import solve_weighted_dp

        profile = solve_weighted_dp(self.weighted_problem()).info["profile"]
        assert set(profile["stages_s"]) == {"dp_rows", "reconstruct"}

    def test_weighted_heuristic_stages(self, profiling_on):
        from repro.core.weighted import solve_weighted_heuristic

        profile = solve_weighted_heuristic(self.weighted_problem()).info["profile"]
        assert set(profile["stages_s"]) == {"rational_solve", "snap_cuts", "evaluate"}

    def test_disabled_strips_profile_everywhere(self, profiling_off):
        from repro.core.closed_form import solve_closed_form
        from repro.core.heuristic import solve_heuristic
        from repro.core.solver import solve_uniform
        from repro.core.weighted import solve_weighted_dp, solve_weighted_heuristic

        for result in (
            solve_closed_form(self.problem()),
            solve_heuristic(self.problem()),
            solve_uniform(self.problem()),
            solve_weighted_dp(self.weighted_problem()),
            solve_weighted_heuristic(self.weighted_problem()),
        ):
            assert "profile" not in (result.info or {}), result.algorithm
