"""JsonlStreamWriter: O(1)-memory streaming export, byte-identical to batch."""

import io

import pytest

from repro.obs import EventLog, JsonlStreamWriter, events_to_jsonl
from repro.tomo.app import plan_counts, run_seismic_app
from repro.workloads.scenarios import two_site_grid


def traced_run(observers):
    plat = two_site_grid()
    hosts = list(plat.host_names)
    counts = plan_counts(plat, hosts, 300, algorithm="auto")
    return run_seismic_app(plat, hosts, counts, observers=observers)


class TestByteIdentity:
    def test_stream_equals_batch_export(self):
        log = EventLog()
        buf = io.StringIO()
        writer = JsonlStreamWriter(buf)
        traced_run([log, writer])
        writer.close()
        assert len(log.events) > 0
        assert buf.getvalue() == events_to_jsonl(log.events)
        assert writer.count == len(log.events)

    def test_two_seeded_runs_stream_identically(self):
        streams = []
        for _ in range(2):
            buf = io.StringIO()
            with JsonlStreamWriter(buf) as writer:
                traced_run([writer])
            streams.append(buf.getvalue())
        assert streams[0] == streams[1]


class TestLifecycle:
    def test_path_target_owns_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        log = EventLog()
        with JsonlStreamWriter(str(path)) as writer:
            traced_run([log, writer])
        assert path.read_text(encoding="utf-8") == events_to_jsonl(log.events)

    def test_file_object_target_left_open(self):
        buf = io.StringIO()
        writer = JsonlStreamWriter(buf)
        writer.close()
        buf.write("still writable")  # caller keeps ownership

    def test_write_after_close_raises(self):
        log = EventLog()
        with JsonlStreamWriter(io.StringIO()) as writer:
            traced_run([log, writer])
        with pytest.raises(ValueError, match="closed"):
            writer(log.events[0])

    def test_close_is_idempotent(self):
        writer = JsonlStreamWriter(io.StringIO())
        writer.close()
        writer.close()

    def test_empty_stream_writes_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        with JsonlStreamWriter(str(path)) as writer:
            pass
        assert writer.count == 0
        assert path.read_text(encoding="utf-8") == ""
