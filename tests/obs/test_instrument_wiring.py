"""Histogram wiring: transfer durations and MPI retry backoff delays.

Uses snapshot *deltas* (the process-wide METRICS registry accumulates
across the whole test session).
"""

from repro.mpi.runtime import run_spmd
from repro.obs import METRICS
from repro.simgrid.faults import FaultPlan
from repro.simgrid.platform import Platform
from repro.simgrid.host import Host
from repro.simgrid.link import Link
from repro.core.costs import LinearCost
from repro.tomo.app import plan_counts, run_seismic_app
from repro.workloads.scenarios import two_site_grid


def hist_delta(name, before):
    after = METRICS.snapshot().get(name, {"count": 0, "total": 0.0})
    prior = before.get(name, {"count": 0, "total": 0.0})
    return after["count"] - prior["count"], after["total"] - prior["total"]


def star_platform(p=2, alpha=0.01, beta=1e-4):
    plat = Platform("star")
    for i in range(p):
        plat.add_host(Host(f"h{i}", LinearCost(alpha)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(beta))
    return plat


class TestTransferDurationHistogram:
    def test_every_transfer_observed(self):
        before = METRICS.snapshot()
        plat = two_site_grid()
        hosts = list(plat.host_names)
        counts = plan_counts(plat, hosts, 200, algorithm="auto")
        result = run_seismic_app(plat, hosts, counts, observers=None)
        sent = sum(1 for c in counts[:-1] if c > 0)  # root keeps its chunk
        d_count, d_total = hist_delta("net.transfer.duration_s", before)
        assert d_count == sent
        assert d_total > 0.0
        assert d_total <= result.makespan * len(hosts)

    def test_loopback_not_observed(self):
        from repro.simgrid.engine import Simulator
        from repro.simgrid.network import Network

        before = METRICS.snapshot()
        plat = star_platform()
        sim = Simulator()
        net = Network(sim, plat)
        mbox = sim.mailbox("loop")

        def proc():
            yield from net.send("h0", "h0", 100, "payload", mbox)

        sim.spawn("loopback", proc())
        sim.run()
        d_count, _ = hist_delta("net.transfer.duration_s", before)
        assert d_count == 0

    def test_bucketed_for_tail_inspection(self):
        hist = METRICS.snapshot().get("net.transfer.duration_s")
        if hist is None:  # this test ran first; drive one transfer
            plat = two_site_grid()
            hosts = list(plat.host_names)
            run_seismic_app(plat, hosts, plan_counts(plat, hosts, 50), observers=None)
            hist = METRICS.snapshot()["net.transfer.duration_s"]
        assert "buckets" in hist
        assert "le=+Inf" in hist["buckets"]


class TestBackoffHistogram:
    def test_retry_delays_observed(self):
        before = METRICS.snapshot()
        plat = star_platform()
        faults = FaultPlan(seed=3).link_outage("h0", "h1", start=0.0, end=0.5)

        def program(ctx):
            if ctx.rank == 0:
                retries = yield from ctx.send(
                    1, "payload", items=100, retries=5, backoff=0.3
                )
                return retries
            return (yield from ctx.recv(0))

        run = run_spmd(plat, plat.host_names, program, faults=faults)
        retries = run.results[0]
        assert retries >= 1
        d_count, d_total = hist_delta("mpi.send.backoff_s", before)
        assert d_count == retries
        # Exponential schedule with jitter in [0, 1): attempt k waits in
        # [0.3 * 2**k, 0.6 * 2**k).
        lo = sum(0.3 * 2**k for k in range(retries))
        assert lo <= d_total < 2 * lo

    def test_fault_free_run_records_no_backoff(self):
        before = METRICS.snapshot()
        plat = star_platform()

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, "payload", items=100, retries=3)
            else:
                yield from ctx.recv(0)

        run_spmd(plat, plat.host_names, program)
        d_count, _ = hist_delta("mpi.send.backoff_s", before)
        assert d_count == 0
