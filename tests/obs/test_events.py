"""Tests for the typed event bus (repro.obs.events)."""

import dataclasses

import pytest

from repro.obs import (
    EVENT_TYPES,
    COMPUTE_BEGIN,
    PROCESS_START,
    SEND_BEGIN,
    Event,
    EventBus,
    EventLog,
)


class TestEventBus:
    def test_emit_without_subscribers_is_none(self):
        bus = EventBus()
        assert bus.emit(PROCESS_START, 0.0, "p0") is None
        assert not bus.active
        assert bus.emitted == 0  # the fast path does not burn sequence numbers

    def test_emit_delivers_to_subscribers_in_order(self):
        bus = EventBus()
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(seen_b.append)
        event = bus.emit(SEND_BEGIN, 1.5, "host-a", dst="host-b", items=7)
        assert event is not None
        assert seen_a == [event] and seen_b == [event]
        assert event.type == SEND_BEGIN
        assert event.t == 1.5
        assert event.actor == "host-a"
        assert event.data == {"dst": "host-b", "items": 7}

    def test_seq_is_a_total_order(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        for k in range(5):
            bus.emit(COMPUTE_BEGIN, 2.0, f"p{k}")  # equal t, distinct seq
        seqs = [e.seq for e in log]
        assert seqs == sorted(seqs) == list(range(5))
        assert bus.emitted == 5

    def test_unsubscribe_closure(self):
        bus = EventBus()
        log = EventLog()
        unsubscribe = bus.subscribe(log)
        bus.emit(PROCESS_START, 0.0, "p0")
        unsubscribe()
        bus.emit(PROCESS_START, 1.0, "p1")
        assert len(log) == 1
        assert not bus.active
        unsubscribe()  # idempotent

    def test_events_are_frozen(self):
        bus = EventBus()
        bus.subscribe(lambda e: None)
        event = bus.emit(PROCESS_START, 0.0, "p0")
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.t = 99.0

    def test_event_types_registry(self):
        assert PROCESS_START in EVENT_TYPES
        assert len(EVENT_TYPES) == 13


class TestEventLog:
    def test_collects_and_clears(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        bus.emit(PROCESS_START, 0.0, "a")
        bus.emit(PROCESS_START, 1.0, "b")
        assert len(log) == 2
        assert [e.actor for e in log] == ["a", "b"]
        log.clear()
        assert len(log) == 0


class TestEngineIntegration:
    def test_process_lifecycle_events(self):
        from repro.simgrid.engine import Hold, Simulator

        sim = Simulator()
        log = EventLog()
        sim.bus.subscribe(log)

        def body():
            yield Hold(2.0)

        sim.spawn("worker", body())
        sim.run()
        types = [(e.type, e.actor, e.t) for e in log]
        assert ("process.start", "worker", 0.0) in types
        assert ("process.end", "worker", 2.0) in types

    def test_kill_emits_kill_not_end(self):
        from repro.simgrid.engine import Hold, Simulator

        sim = Simulator()
        log = EventLog()
        sim.bus.subscribe(log)

        def victim():
            yield Hold(100.0)

        def killer(proc):
            yield Hold(1.0)
            proc.kill(RuntimeError("scripted"))

        proc = sim.spawn("victim", victim())
        sim.spawn("killer", killer(proc))
        sim.run()
        types = {(e.type, e.actor) for e in log}
        assert ("process.kill", "victim") in types
        assert ("process.end", "victim") not in types
        kill = next(e for e in log if e.type == "process.kill")
        assert "scripted" in kill.data["reason"]
