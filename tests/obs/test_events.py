"""Tests for the typed event bus (repro.obs.events)."""

import dataclasses

import pytest

from repro.obs import (
    EVENT_TYPES,
    COMPUTE_BEGIN,
    PROCESS_START,
    SEND_BEGIN,
    Event,
    EventBus,
    EventLog,
)


class TestEventBus:
    def test_emit_without_subscribers_is_none(self):
        bus = EventBus()
        assert bus.emit(PROCESS_START, 0.0, "p0") is None
        assert not bus.active
        assert bus.emitted == 0  # the fast path does not burn sequence numbers

    def test_emit_delivers_to_subscribers_in_order(self):
        bus = EventBus()
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(seen_b.append)
        event = bus.emit(SEND_BEGIN, 1.5, "host-a", dst="host-b", items=7)
        assert event is not None
        assert seen_a == [event] and seen_b == [event]
        assert event.type == SEND_BEGIN
        assert event.t == 1.5
        assert event.actor == "host-a"
        assert event.data == {"dst": "host-b", "items": 7}

    def test_seq_is_a_total_order(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        for k in range(5):
            bus.emit(COMPUTE_BEGIN, 2.0, f"p{k}")  # equal t, distinct seq
        seqs = [e.seq for e in log]
        assert seqs == sorted(seqs) == list(range(5))
        assert bus.emitted == 5

    def test_unsubscribe_closure(self):
        bus = EventBus()
        log = EventLog()
        unsubscribe = bus.subscribe(log)
        bus.emit(PROCESS_START, 0.0, "p0")
        unsubscribe()
        bus.emit(PROCESS_START, 1.0, "p1")
        assert len(log) == 1
        assert not bus.active
        unsubscribe()  # idempotent

    def test_events_are_frozen(self):
        bus = EventBus()
        bus.subscribe(lambda e: None)
        event = bus.emit(PROCESS_START, 0.0, "p0")
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.t = 99.0

    def test_event_types_registry(self):
        assert PROCESS_START in EVENT_TYPES
        assert len(EVENT_TYPES) == 13


class TestEventLog:
    def test_collects_and_clears(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        bus.emit(PROCESS_START, 0.0, "a")
        bus.emit(PROCESS_START, 1.0, "b")
        assert len(log) == 2
        assert [e.actor for e in log] == ["a", "b"]
        log.clear()
        assert len(log) == 0


class TestEngineIntegration:
    def test_process_lifecycle_events(self):
        from repro.simgrid.engine import Hold, Simulator

        sim = Simulator()
        log = EventLog()
        sim.bus.subscribe(log)

        def body():
            yield Hold(2.0)

        sim.spawn("worker", body())
        sim.run()
        types = [(e.type, e.actor, e.t) for e in log]
        assert ("process.start", "worker", 0.0) in types
        assert ("process.end", "worker", 2.0) in types

    def test_kill_emits_kill_not_end(self):
        from repro.simgrid.engine import Hold, Simulator

        sim = Simulator()
        log = EventLog()
        sim.bus.subscribe(log)

        def victim():
            yield Hold(100.0)

        def killer(proc):
            yield Hold(1.0)
            proc.kill(RuntimeError("scripted"))

        proc = sim.spawn("victim", victim())
        sim.spawn("killer", killer(proc))
        sim.run()
        types = {(e.type, e.actor) for e in log}
        assert ("process.kill", "victim") in types
        assert ("process.end", "victim") not in types
        kill = next(e for e in log if e.type == "process.kill")
        assert "scripted" in kill.data["reason"]


class TestTypedSubscription:
    """Filtered fan-out: precomputed per-type dispatch on the bus."""

    def test_filtered_subscriber_sees_only_its_types(self):
        from repro.obs.events import EventBus, PROCESS_START, SEND_BEGIN, SEND_END

        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, types={SEND_BEGIN, SEND_END})
        bus.emit(PROCESS_START, 0.0, "p0")
        bus.emit(SEND_BEGIN, 1.0, "p0", dst="p1", items=3)
        bus.emit(SEND_END, 2.0, "p0", dst="p1")
        assert [e.type for e in seen] == [SEND_BEGIN, SEND_END]

    def test_seq_advances_even_without_takers(self):
        # A filtered subscriber must not renumber what an unfiltered one
        # sees: seq counts every emit on an active bus.
        from repro.obs.events import EventBus, PROCESS_START, SEND_BEGIN

        bus = EventBus()
        spans = []
        bus.subscribe(spans.append, types={SEND_BEGIN})
        bus.emit(PROCESS_START, 0.0, "p0")  # no taker; still consumes seq 0
        ev = bus.emit(SEND_BEGIN, 1.0, "p0", dst="p1", items=1)
        assert ev.seq == 1
        assert bus.emitted == 2

    def test_untaken_type_returns_none_without_construction(self):
        from repro.obs.events import EventBus, PROCESS_START, SEND_BEGIN

        bus = EventBus()
        bus.subscribe(lambda e: None, types={SEND_BEGIN})
        assert bus.emit(PROCESS_START, 0.0, "p0") is None

    def test_subscription_order_preserved_across_filters(self):
        from repro.obs.events import EventBus, SEND_BEGIN

        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("typed"), types={SEND_BEGIN})
        bus.subscribe(lambda e: order.append("all"))
        bus.emit(SEND_BEGIN, 0.0, "p0")
        assert order == ["typed", "all"]

    def test_unsubscribe_filtered(self):
        from repro.obs.events import EventBus, SEND_BEGIN

        bus = EventBus()
        seen = []
        off = bus.subscribe(seen.append, types={SEND_BEGIN})
        bus.emit(SEND_BEGIN, 0.0, "p0")
        off()
        bus.emit(SEND_BEGIN, 1.0, "p0")
        assert len(seen) == 1
        assert not bus.active

    def test_span_tracer_subscribed_filtered_matches_recorder(self):
        # The Network subscribes its tracer with SPAN_TYPES; the recorded
        # timeline must be identical to an unfiltered subscription.
        from repro.obs.tracer import SPAN_TYPES, SpanTracer
        from repro.obs.events import (
            EventBus,
            COMPUTE_BEGIN,
            COMPUTE_END,
            PROCESS_START,
            PROCESS_END,
        )
        from repro.simgrid.trace import TraceRecorder

        def drive(bus):
            bus.emit(PROCESS_START, 0.0, "w")
            bus.emit(COMPUTE_BEGIN, 0.0, "w", items=10)
            bus.emit(COMPUTE_END, 2.5, "w")
            bus.emit(PROCESS_END, 2.5, "w")

        rec_all, rec_typed = TraceRecorder(), TraceRecorder()
        bus = EventBus()
        bus.subscribe(SpanTracer(rec_all))
        drive(bus)
        bus = EventBus()
        bus.subscribe(SpanTracer(rec_typed), types=SPAN_TYPES)
        drive(bus)
        assert rec_typed.timeline("w") == rec_all.timeline("w")
