"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import METRICS, Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        c = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(3)
        g.dec()
        assert g.value == 12


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 6.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9.0
        assert h.min == 1.0 and h.max == 6.0
        assert h.mean == pytest.approx(3.0)

    def test_empty_mean_is_none(self):
        assert Histogram("h").mean is None

    def test_buckets(self):
        h = Histogram("h", buckets=[1.0, 5.0])
        for v in (0.5, 0.9, 3.0, 100.0):
            h.observe(v)
        assert h.bucket_counts() == {"le=1": 2, "le=5": 1, "le=+Inf": 1}

    def test_duplicate_buckets_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Histogram("h", buckets=[1.0, 1.0])


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x.hits")
        b = reg.counter("x.hits")
        assert a is b
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_is_json_compatible_and_sorted(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.level").set(7)
        h = reg.histogram("c.sizes", buckets=[10.0])
        h.observe(3)
        snap = reg.snapshot()
        assert list(snap) == ["a.level", "b.count", "c.sizes"]
        assert snap["a.level"] == 7
        assert snap["b.count"] == 2
        assert snap["c.sizes"]["count"] == 1
        assert snap["c.sizes"]["buckets"] == {"le=10": 1, "le=+Inf": 0}
        json.dumps(snap)  # must not need custom encoders

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.counter("x").value == 0


class TestWiring:
    """Library code paths must feed the default registry."""

    def test_cost_cache_hit_miss_counters(self):
        from repro.core.costs import CostTableCache, LinearCost

        hits = METRICS.counter("core.cost_cache.hits")
        misses = METRICS.counter("core.cost_cache.misses")
        h0, m0 = hits.value, misses.value
        cache = CostTableCache()
        cache.table(LinearCost(0.017), 50)
        assert misses.value == m0 + 1
        cache.table(LinearCost(0.017), 50)
        assert hits.value == h0 + 1

    def test_imbalance_exclusion_counter(self):
        from repro.simgrid.trace import TraceRecorder

        rec = TraceRecorder()
        rec.record("busy", "computing", 0.0, 4.0)
        rec.timeline("lazy")  # finish time 0 -> excluded by default
        c = METRICS.counter("trace.imbalance.zero_finish_excluded")
        before = c.value
        assert rec.imbalance() == 0.0
        assert c.value == before + 1
        assert rec.zero_finish() == ["lazy"]
        assert rec.imbalance(include_zero=True) == 1.0
