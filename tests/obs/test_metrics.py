"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import METRICS, Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        c = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(3)
        g.dec()
        assert g.value == 12


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 6.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9.0
        assert h.min == 1.0 and h.max == 6.0
        assert h.mean == pytest.approx(3.0)

    def test_empty_mean_is_none(self):
        assert Histogram("h").mean is None

    def test_buckets(self):
        h = Histogram("h", buckets=[1.0, 5.0])
        for v in (0.5, 0.9, 3.0, 100.0):
            h.observe(v)
        assert h.bucket_counts() == {"le=1": 2, "le=5": 1, "le=+Inf": 1}

    def test_duplicate_buckets_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Histogram("h", buckets=[1.0, 1.0])


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x.hits")
        b = reg.counter("x.hits")
        assert a is b
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_is_json_compatible_and_sorted(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.level").set(7)
        h = reg.histogram("c.sizes", buckets=[10.0])
        h.observe(3)
        snap = reg.snapshot()
        assert list(snap) == ["a.level", "b.count", "c.sizes"]
        assert snap["a.level"] == 7
        assert snap["b.count"] == 2
        assert snap["c.sizes"]["count"] == 1
        assert snap["c.sizes"]["buckets"] == {"le=10": 1, "le=+Inf": 0}
        json.dumps(snap)  # must not need custom encoders

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.counter("x").value == 0


class TestWiring:
    """Library code paths must feed the default registry."""

    def test_cost_cache_hit_miss_counters(self):
        from repro.core.costs import CostTableCache, LinearCost

        hits = METRICS.counter("core.cost_cache.hits")
        misses = METRICS.counter("core.cost_cache.misses")
        h0, m0 = hits.value, misses.value
        cache = CostTableCache()
        cache.table(LinearCost(0.017), 50)
        assert misses.value == m0 + 1
        cache.table(LinearCost(0.017), 50)
        assert hits.value == h0 + 1

    def test_imbalance_exclusion_counter(self):
        from repro.simgrid.trace import TraceRecorder

        rec = TraceRecorder()
        rec.record("busy", "computing", 0.0, 4.0)
        rec.timeline("lazy")  # finish time 0 -> excluded by default
        c = METRICS.counter("trace.imbalance.zero_finish_excluded")
        before = c.value
        assert rec.imbalance() == 0.0
        assert c.value == before + 1
        assert rec.zero_finish() == ["lazy"]
        assert rec.imbalance(include_zero=True) == 1.0


class TestCrossProcessAggregation:
    """kinded_snapshot / state_delta / merge — the worker-to-parent path."""

    def test_delta_captures_only_changes(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("g").set(7)
        before = reg.kinded_snapshot()
        reg.counter("a").inc(2)
        reg.counter("b").inc()
        reg.histogram("h", buckets=[10]).observe(4)
        delta = MetricsRegistry.state_delta(before, reg.kinded_snapshot())
        assert delta["a"] == ("counter", 2)
        assert delta["b"] == ("counter", 1)
        assert "g" not in delta  # unchanged instruments are omitted
        assert delta["h"][0] == "histogram"
        assert delta["h"][1]["count"] == 1
        assert delta["h"][1]["counts"] == [1, 0]

    def test_delta_is_picklable(self):
        import pickle

        reg = MetricsRegistry()
        before = reg.kinded_snapshot()
        reg.counter("x").inc()
        reg.histogram("h", buckets=[1.0, 2.0]).observe(1.5)
        delta = MetricsRegistry.state_delta(before, reg.kinded_snapshot())
        assert pickle.loads(pickle.dumps(delta)) == delta

    def test_merge_counters_and_gauges(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(5)
        worker.gauge("g").inc(2)
        parent = MetricsRegistry()
        parent.counter("c").inc(10)
        delta = MetricsRegistry.state_delta({}, worker.kinded_snapshot())
        parent.merge(delta)
        assert parent.counter("c").value == 15
        assert parent.gauge("g").value == 2  # created on demand

    def test_merge_histograms(self):
        worker = MetricsRegistry()
        h = worker.histogram("h", buckets=[10, 100])
        h.observe(5)
        h.observe(50)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=[10, 100]).observe(500)
        parent.merge(MetricsRegistry.state_delta({}, worker.kinded_snapshot()))
        merged = parent.histogram("h")
        assert merged.count == 3
        assert merged.total == 555.0
        assert merged.min == 5.0
        assert merged.max == 500.0
        assert merged.bucket_counts() == {"le=10": 1, "le=100": 1, "le=+Inf": 1}

    def test_merge_bucket_mismatch_preserves_count(self):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=[1]).observe(0.5)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=[2, 4]).observe(3)
        parent.merge(MetricsRegistry.state_delta({}, worker.kinded_snapshot()))
        merged = parent.histogram("h")
        assert merged.count == 2  # nothing silently dropped
        assert merged.bucket_counts()["le=+Inf"] == 1

    def test_roundtrip_equals_direct_observation(self):
        # parent + merge(worker delta) == one registry seeing everything
        direct = MetricsRegistry()
        split_parent = MetricsRegistry()
        worker = MetricsRegistry()
        for reg in (direct, split_parent):
            reg.counter("c").inc(2)
        before = worker.kinded_snapshot()
        for reg in (direct, worker):
            reg.counter("c").inc(3)
            reg.histogram("h", buckets=[10]).observe(7)
        split_parent.merge(
            MetricsRegistry.state_delta(before, worker.kinded_snapshot())
        )
        assert split_parent.snapshot() == direct.snapshot()
