"""Tests for SpanTracer and the JSONL / Chrome trace exporters."""

import json

import pytest

from repro.obs import (
    EventBus,
    EventLog,
    SpanTracer,
    events_to_chrome,
    events_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.simgrid.trace import TraceRecorder


def make_bus():
    bus = EventBus()
    rec = TraceRecorder()
    tracer = SpanTracer(rec)
    bus.subscribe(tracer)
    log = EventLog()
    bus.subscribe(log)
    return bus, rec, tracer, log


class TestSpanTracer:
    def test_folds_pairs_into_intervals(self):
        bus, rec, tracer, _ = make_bus()
        bus.emit("send.begin", 0.0, "root", dst="w")
        bus.emit("recv.begin", 0.0, "w", src="root")
        bus.emit("send.end", 1.5, "root", dst="w")
        bus.emit("recv.end", 1.5, "w", src="root")
        bus.emit("compute.begin", 1.5, "w", items=10)
        bus.emit("compute.end", 4.0, "w")
        assert tracer.open_spans == 0
        tl = rec.timeline("w")
        assert [(iv.state, iv.start, iv.end) for iv in tl.intervals] == [
            ("receiving", 0.0, 1.5),
            ("computing", 1.5, 4.0),
        ]
        assert rec.timeline("root").time_in("sending") == 1.5

    def test_failed_send_keeps_partial_sending_only(self):
        bus, rec, tracer, _ = make_bus()
        bus.emit("send.begin", 0.0, "root", dst="w")
        bus.emit("recv.begin", 0.0, "w", src="root")
        bus.emit("send.end", 0.7, "root", dst="w", error="link down")
        bus.emit("recv.end", 0.7, "w", src="root", error="link down")
        assert rec.timeline("root").time_in("sending") == pytest.approx(0.7)
        assert rec.timeline("w").intervals == []

    def test_failed_send_at_zero_elapsed_records_nothing(self):
        bus, rec, _, _ = make_bus()
        bus.emit("send.begin", 2.0, "root", dst="w")
        bus.emit("send.end", 2.0, "root", dst="w", error="dead on arrival")
        assert rec.timeline("root").intervals == []

    def test_stale_span_is_dropped_and_replaced(self):
        # A killed sender never emits its end events; the next begin on the
        # same (actor, state) key must supersede the dangling span.
        bus, rec, tracer, _ = make_bus()
        bus.emit("recv.begin", 0.0, "root", src="w1")  # w1 dies mid-send
        bus.emit("recv.begin", 5.0, "root", src="w2")
        bus.emit("recv.end", 6.0, "root", src="w2")
        assert tracer.dropped_spans == 1
        assert [(iv.start, iv.end) for iv in rec.timeline("root").intervals] == [
            (5.0, 6.0)
        ]

    def test_end_without_begin_raises(self):
        bus, _, _, _ = make_bus()
        with pytest.raises(RuntimeError, match="span end without begin"):
            bus.emit("compute.end", 1.0, "w")

    def test_matches_network_direct_recording(self):
        """The tracer-fed recorder must equal the intervals the network
        used to record directly: same labels, states, and boundaries."""
        from repro.core.distribution import uniform_counts
        from repro.tomo.app import run_seismic_app
        from repro.workloads.table1 import table1_platform

        platform = table1_platform()
        hosts = [h for h in platform.hosts][:4]
        counts = uniform_counts(400, 4)
        result = run_seismic_app(platform, hosts, counts)
        rec = result.run.recorder
        for name in result.run.trace_names:
            tl = rec.timeline(name)
            assert tl.finish_time > 0
            assert all(iv.end >= iv.start for iv in tl.intervals)


class TestJsonl:
    def test_round_trip_and_determinism(self, tmp_path):
        bus, _, _, log = make_bus()
        bus.emit("send.begin", 0.0, "root", dst="w", items=3)
        bus.emit("send.end", 1.0, "root", dst="w")
        text = events_to_jsonl(log.events)
        assert text == events_to_jsonl(list(log))  # pure function of events
        lines = text.strip().split("\n")
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "seq": 0,
            "t": 0.0,
            "type": "send.begin",
            "actor": "root",
            "data": {"dst": "w", "items": 3},
        }
        path = tmp_path / "events.jsonl"
        assert write_jsonl(log.events, path) == 2
        assert path.read_text(encoding="utf-8") == text

    def test_empty_log(self):
        assert events_to_jsonl([]) == ""


class TestChrome:
    def events(self):
        bus, _, _, log = make_bus()
        bus.emit("process.start", 0.0, "w")
        bus.emit("send.begin", 0.0, "root", dst="w")
        bus.emit("recv.begin", 0.0, "w", src="root")
        bus.emit("send.end", 1.0, "root", dst="w")
        bus.emit("recv.end", 1.0, "w", src="root")
        bus.emit("compute.begin", 1.0, "w", items=5)
        bus.emit("compute.end", 3.0, "w")
        bus.emit("process.end", 3.0, "w")
        return log.events

    def test_structure_and_validation(self, tmp_path):
        doc = events_to_chrome(self.events())
        count = validate_chrome_trace(doc)
        assert count == len(doc["traceEvents"])
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metas}
        assert "repro-scatter" in names and "w" in names and "root" in names
        spans = [e for e in doc["traceEvents"] if e["ph"] in "BE"]
        assert [e["name"] for e in spans] == [
            "send", "recv", "send", "recv", "compute", "compute",
        ]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"process.start", "process.end"}
        path = tmp_path / "trace.json"
        written = write_chrome_trace(self.events(), path)
        assert json.loads(path.read_text(encoding="utf-8")) == written

    def test_ts_scaled_to_microseconds(self):
        doc = events_to_chrome(self.events())
        compute_b = next(
            e for e in doc["traceEvents"] if e["name"] == "compute" and e["ph"] == "B"
        )
        assert compute_b["ts"] == pytest.approx(1e6)

    def test_validator_rejects_bad_docs(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        base = {"pid": 1, "tid": 1}
        with pytest.raises(ValueError, match="monotone"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        dict(base, name="a", ph="i", s="t", ts=5.0),
                        dict(base, name="b", ph="i", s="t", ts=1.0),
                    ]
                }
            )
        with pytest.raises(ValueError, match="without matching"):
            validate_chrome_trace(
                {"traceEvents": [dict(base, name="send", ph="E", ts=0.0)]}
            )
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace(
                {"traceEvents": [dict(base, name="send", ph="B", ts=0.0)]}
            )
        with pytest.raises(ValueError, match="does not match"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        dict(base, name="send", ph="B", ts=0.0),
                        dict(base, name="recv", ph="E", ts=1.0),
                    ]
                }
            )

    def test_end_to_end_export_is_valid(self):
        from repro.core.distribution import uniform_counts
        from repro.tomo.app import run_seismic_app
        from repro.workloads.table1 import table1_platform

        platform = table1_platform()
        hosts = [h for h in platform.hosts][:5]
        log = EventLog()
        run_seismic_app(platform, hosts, uniform_counts(500, 5), observers=[log])
        doc = events_to_chrome(log.events)
        assert validate_chrome_trace(doc) > 0


class TestChromeFlows:
    """send→recv flow arrows (``ph`` ``"s"``/``"f"``)."""

    def test_send_recv_pair_produces_flow(self):
        bus, _, _, log = make_bus()
        bus.emit("send.begin", 0.0, "root", dst="w")
        bus.emit("recv.begin", 0.0, "w", src="root")
        bus.emit("send.end", 1.0, "root", dst="w")
        bus.emit("recv.end", 1.0, "w", src="root")
        doc = events_to_chrome(log.events)
        validate_chrome_trace(doc)
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        assert [e["ph"] for e in flows] == ["s", "f"]
        start, finish = flows
        assert start["id"] == finish["id"]
        assert start["name"] == finish["name"] == "transfer"
        assert start["cat"] == finish["cat"] == "net"
        assert finish["bp"] == "e"
        assert start["tid"] != finish["tid"]  # sender lane -> receiver lane
        # The arrow hangs off the begin edges of the two spans.
        assert start["ts"] == finish["ts"] == 0.0

    def test_every_transfer_gets_its_own_flow_id(self):
        bus, _, _, log = make_bus()
        for i, dst in enumerate(["w1", "w2", "w3"]):
            t = float(i)
            bus.emit("send.begin", t, "root", dst=dst)
            bus.emit("recv.begin", t, dst, src="root")
            bus.emit("send.end", t + 0.5, "root", dst=dst)
            bus.emit("recv.end", t + 0.5, dst, src="root")
        doc = events_to_chrome(log.events)
        validate_chrome_trace(doc)
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 3
        assert len({e["id"] for e in starts}) == 3
        assert sorted(e["id"] for e in starts) == sorted(e["id"] for e in finishes)

    def test_unpaired_send_opens_no_arrow_finish(self):
        # A send.begin not followed by its recv.begin (filtered stream):
        # the 's' is emitted but never finished -> the validator objects.
        bus, _, _, log = make_bus()
        bus.emit("send.begin", 0.0, "root", dst="w")
        bus.emit("compute.begin", 0.0, "w", items=1)
        bus.emit("compute.end", 1.0, "w")
        bus.emit("send.end", 1.0, "root", dst="w")
        doc = events_to_chrome(log.events)
        with pytest.raises(ValueError, match="unfinished 's'"):
            validate_chrome_trace(doc)

    def test_validator_flow_rules(self):
        base = {"pid": 1, "tid": 1, "cat": "net", "name": "transfer"}
        with pytest.raises(ValueError, match="missing 'id'"):
            validate_chrome_trace(
                {"traceEvents": [dict(base, ph="s", ts=0.0)]}
            )
        with pytest.raises(ValueError, match="without matching 's'"):
            validate_chrome_trace(
                {"traceEvents": [dict(base, ph="f", bp="e", id=1, ts=0.0)]}
            )
        with pytest.raises(ValueError, match="re-opened"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        dict(base, ph="s", id=1, ts=0.0),
                        dict(base, ph="s", id=1, ts=1.0),
                    ]
                }
            )
        with pytest.raises(ValueError, match="unfinished"):
            validate_chrome_trace(
                {"traceEvents": [dict(base, ph="s", id=1, ts=0.0)]}
            )

    def test_app_run_flows_match_transfer_count(self):
        from repro.core.distribution import uniform_counts
        from repro.tomo.app import run_seismic_app
        from repro.workloads.table1 import table1_platform

        platform = table1_platform()
        hosts = [h for h in platform.hosts][:4]
        log = EventLog()
        run_seismic_app(platform, hosts, uniform_counts(100, 4), observers=[log])
        sends = [e for e in log.events if e.type == "send.begin"]
        doc = events_to_chrome(log.events)
        validate_chrome_trace(doc)
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        assert len(starts) == len(sends) > 0
