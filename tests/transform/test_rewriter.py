"""Tests for the MPI_Scatter -> MPI_Scatterv source rewriter."""

import shutil
import subprocess
import textwrap

import pytest

from repro.transform import (
    RUNTIME_HELPER_NAME,
    TransformError,
    emit_runtime_helper,
    find_scatter_calls,
    rewrite_runtime,
    rewrite_static,
)

SIMPLE = textwrap.dedent(
    """
    #include <mpi.h>
    void run(float *raydata, float *rbuff, int n, int P) {
        MPI_Scatter(raydata, n/P, MPI_FLOAT, rbuff, n/P, MPI_FLOAT,
                    ROOT, MPI_COMM_WORLD);
        compute_work(rbuff);
    }
    """
)


class TestFindScatterCalls:
    def test_finds_single_call(self):
        calls = find_scatter_calls(SIMPLE)
        assert len(calls) == 1
        call = calls[0]
        assert call.sendbuf == "raydata"
        assert call.args[1] == "n/P"
        assert call.root == "ROOT"
        assert call.comm == "MPI_COMM_WORLD"

    def test_line_number(self):
        assert find_scatter_calls(SIMPLE)[0].line == 4

    def test_skips_comments(self):
        src = "/* MPI_Scatter(a,b,c,d,e,f,g,h); */\n" + SIMPLE
        assert len(find_scatter_calls(src)) == 1

    def test_skips_line_comments(self):
        src = "// MPI_Scatter(a,b,c,d,e,f,g,h);\n" + SIMPLE
        assert len(find_scatter_calls(src)) == 1

    def test_skips_strings(self):
        src = 'const char *s = "MPI_Scatter(a,b,c,d,e,f,g,h);";\n' + SIMPLE
        assert len(find_scatter_calls(src)) == 1

    def test_nested_parens_in_args(self):
        src = (
            "void f(void){ MPI_Scatter((void*)(buf+off), count(x, y), T,"
            " r, rc, T2, root(0), comm); }"
        )
        call = find_scatter_calls(src)[0]
        assert call.sendbuf == "(void*)(buf+off)"
        assert call.args[1] == "count(x, y)"
        assert call.root == "root(0)"

    def test_multiple_calls(self):
        src = SIMPLE + SIMPLE.replace("run(", "run2(")
        assert len(find_scatter_calls(src)) == 2

    def test_wrong_arity_rejected(self):
        with pytest.raises(TransformError, match="arguments"):
            find_scatter_calls("void f(void){ MPI_Scatter(a, b); }")

    def test_non_statement_rejected(self):
        with pytest.raises(TransformError, match="statement"):
            find_scatter_calls(
                "int e = MPI_Scatter(a,b,c,d,e,f,g,h) + 1;"
            )

    def test_unterminated_comment(self):
        with pytest.raises(TransformError, match="comment"):
            find_scatter_calls("/* oops")

    def test_no_calls(self):
        assert find_scatter_calls("int main(void){return 0;}") == []


class TestRewriteStatic:
    def test_emits_scatterv(self):
        out = rewrite_static(SIMPLE, [50, 30, 20])
        assert "MPI_Scatterv(raydata" in out
        assert "MPI_Scatter(raydata" not in out
        assert "{50, 30, 20}" in out
        assert "{0, 50, 80}" in out  # displacements: prefix sums

    def test_recv_count_uses_rank(self):
        out = rewrite_static(SIMPLE, [5, 5])
        assert "repro_counts_[repro_rank_]" in out

    def test_preserves_surroundings(self):
        out = rewrite_static(SIMPLE, [1, 2, 3])
        assert "compute_work(rbuff);" in out
        assert "#include <mpi.h>" in out

    def test_rewrites_every_call(self):
        src = SIMPLE + SIMPLE.replace("run(", "run2(")
        out = rewrite_static(src, [10, 10])
        assert out.count("MPI_Scatterv") == 2
        assert "MPI_Scatter(raydata" not in out

    def test_no_call_errors(self):
        with pytest.raises(TransformError, match="no MPI_Scatter"):
            rewrite_static("int x;", [1])

    def test_negative_counts_rejected(self):
        with pytest.raises(TransformError):
            rewrite_static(SIMPLE, [-1, 2])


class TestRewriteRuntime:
    def test_emits_helper_and_call(self):
        out = rewrite_runtime(SIMPLE)
        assert RUNTIME_HELPER_NAME in out
        assert "MPI_Scatterv(raydata" in out
        assert "repro_alpha" in out and "repro_beta" in out

    def test_helper_suppressed(self):
        out = rewrite_runtime(SIMPLE, insert_helper=False)
        assert "static void repro_compute_distribution" not in out
        assert f"{RUNTIME_HELPER_NAME}(" in out  # call site remains

    def test_custom_expressions(self):
        out = rewrite_runtime(
            SIMPLE, alpha_expr="my_alpha", beta_expr="my_beta", n_expr="total_n"
        )
        assert "my_alpha" in out and "my_beta" in out
        assert f"{RUNTIME_HELPER_NAME}(total_n" in out


@pytest.mark.skipif(shutil.which("gcc") is None, reason="no C compiler")
class TestEmittedCAgainstPython:
    """Compile the emitted helper and cross-check it against the Python
    closed form on the Table 1 instance."""

    def test_c_helper_matches_python(self, tmp_path):
        from repro.core import solve_closed_form
        from repro.workloads import table1_problem

        n = 100_000
        prob = table1_problem(n)
        alphas = [float(p.alpha) for p in prob.processors]
        betas = [float(p.beta) for p in prob.processors]
        p = prob.p

        driver = f"""
        #include <stdio.h>
        #include <stdlib.h>
        {emit_runtime_helper()}
        int main(void) {{
            double alpha[{p}] = {{{', '.join(repr(a) for a in alphas)}}};
            double beta[{p}] = {{{', '.join(repr(b) for b in betas)}}};
            int counts[{p}];
            repro_compute_distribution({n}L, {p}, alpha, beta, counts);
            for (int i = 0; i < {p}; ++i) printf("%d\\n", counts[i]);
            return 0;
        }}
        """
        src = tmp_path / "driver.c"
        src.write_text(textwrap.dedent(driver))
        exe = tmp_path / "driver"
        subprocess.run(
            ["gcc", "-O2", "-o", str(exe), str(src)], check=True, capture_output=True
        )
        out = subprocess.run([str(exe)], check=True, capture_output=True, text=True)
        c_counts = [int(line) for line in out.stdout.split()]

        py = solve_closed_form(prob)
        assert sum(c_counts) == n
        # Double-precision C vs exact rationals: within one item per rank.
        for c_val, py_val in zip(c_counts, py.counts):
            assert abs(c_val - py_val) <= 1
        # And the C distribution's makespan is essentially optimal.
        c_makespan = prob.makespan(c_counts)
        assert c_makespan <= py.makespan * (1 + 1e-6)
