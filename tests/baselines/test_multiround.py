"""Tests for the multi-installment scatter ablation."""

import pytest

from repro.baselines import run_multi_installment, split_installments
from repro.core import LinearCost
from repro.simgrid import Host, Link, Platform
from repro.tomo import plan_counts, run_seismic_app
from repro.workloads import table1_platform, table1_rank_hosts


def latency_platform(latency=0.2):
    plat = Platform("lat")
    for i in range(4):
        plat.add_host(Host(f"h{i}", LinearCost(0.01)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.from_bandwidth(5000, latency=latency))
    return plat


class TestSplitInstallments:
    def test_near_equal(self):
        assert split_installments(10, 3) == (4, 3, 3)

    def test_fewer_items_than_rounds(self):
        assert split_installments(2, 4) == (1, 1, 0, 0)

    def test_single_round(self):
        assert split_installments(7, 1) == (7,)

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_installments(5, 0)


class TestRunMultiInstallment:
    def test_all_items_computed(self):
        plat = table1_platform()
        hosts = table1_rank_hosts()
        counts = plan_counts(plat, hosts, 5000)
        res = run_multi_installment(plat, hosts, counts, k=4)
        assert sum(res.run.results) == 5000
        assert res.installments == 4

    def test_k1_matches_single_shot_app(self):
        plat = table1_platform()
        hosts = table1_rank_hosts()
        counts = plan_counts(plat, hosts, 20_000)
        single = run_multi_installment(plat, hosts, counts, k=1)
        app = run_seismic_app(plat, hosts, counts)
        assert single.makespan == pytest.approx(app.makespan)

    def test_stair_area_shrinks_with_k(self):
        plat = table1_platform()
        hosts = table1_rank_hosts()
        counts = plan_counts(plat, hosts, 50_000)
        stairs = [
            run_multi_installment(plat, hosts, counts, k).stair_area
            for k in (1, 2, 4)
        ]
        assert stairs[0] > stairs[1] > stairs[2]

    def test_makespan_unchanged_for_balanced_counts(self):
        """The key observation supporting the paper's §6 design choice: with
        the single-shot-optimal distribution, installments reduce idle time
        but not the makespan (the last-served rank's critical path —
        every send plus its compute — is identical)."""
        plat = table1_platform()
        hosts = table1_rank_hosts()
        counts = plan_counts(plat, hosts, 50_000)
        t1 = run_multi_installment(plat, hosts, counts, k=1).makespan
        t8 = run_multi_installment(plat, hosts, counts, k=8).makespan
        assert t8 == pytest.approx(t1, rel=1e-3)

    def test_latency_punishes_many_installments(self):
        plat = latency_platform()
        counts = (400, 400, 400, 100)
        t1 = run_multi_installment(plat, plat.host_names, counts, k=1).makespan
        t16 = run_multi_installment(plat, plat.host_names, counts, k=16).makespan
        assert t16 > t1 + 1.0  # each extra round re-pays 3 latencies

    def test_validation(self):
        plat = latency_platform()
        with pytest.raises(ValueError, match="same length"):
            run_multi_installment(plat, plat.host_names, (1, 2), k=2)
        with pytest.raises(ValueError, match="negative"):
            run_multi_installment(plat, plat.host_names, (1, -1, 1, 1), k=2)
