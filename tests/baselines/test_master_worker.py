"""Tests for the dynamic master/worker baseline (§6)."""

import pytest

from repro.baselines import ChunkPolicy, MasterWorkerResult, run_master_worker
from repro.core import LinearCost
from repro.simgrid import Host, Link, Platform, SpikeNoise
from repro.tomo import plan_counts, run_seismic_app
from repro.workloads import table1_platform, table1_rank_hosts


def small_platform(alphas=(0.002, 0.01, 0.005), beta=1e-5):
    plat = Platform("mw-test")
    for i, a in enumerate(alphas):
        plat.add_host(Host(f"h{i}", LinearCost(a)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(beta))
    return plat


class TestChunkPolicy:
    def test_fixed(self):
        p = ChunkPolicy("fixed", chunk=100)
        assert p.next_chunk(1000, 4) == 100
        assert p.next_chunk(50, 4) == 50

    def test_guided_decreases(self):
        p = ChunkPolicy("guided", factor=2, min_chunk=10)
        first = p.next_chunk(1000, 4)
        later = p.next_chunk(100, 4)
        assert first > later >= 10

    def test_guided_min_chunk_floor(self):
        p = ChunkPolicy("guided", factor=2, min_chunk=25)
        assert p.next_chunk(30, 8) == 25

    def test_guided_never_exceeds_remaining(self):
        p = ChunkPolicy("guided", factor=1, min_chunk=100)
        assert p.next_chunk(7, 1) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkPolicy("weird")
        with pytest.raises(ValueError):
            ChunkPolicy("fixed", chunk=0)


class TestRunMasterWorker:
    def test_all_items_processed(self):
        plat = small_platform()
        res = run_master_worker(plat, plat.host_names, 1000,
                                policy=ChunkPolicy("fixed", chunk=100))
        assert sum(res.counts) == 1000
        assert res.counts[-1] == 0  # master does not compute

    def test_fast_worker_gets_more(self):
        plat = small_platform(alphas=(0.001, 0.02, 0.005))
        res = run_master_worker(plat, plat.host_names, 2000,
                                policy=ChunkPolicy("fixed", chunk=50))
        assert res.counts[0] > res.counts[1]

    def test_chunks_served_accounting(self):
        plat = small_platform()
        res = run_master_worker(plat, plat.host_names, 1000,
                                policy=ChunkPolicy("fixed", chunk=250))
        assert res.chunks_served == 4

    def test_guided_fewer_chunks_than_small_fixed(self):
        plat = small_platform()
        fixed = run_master_worker(plat, plat.host_names, 5000,
                                  policy=ChunkPolicy("fixed", chunk=50))
        guided = run_master_worker(plat, plat.host_names, 5000,
                                   policy=ChunkPolicy("guided", min_chunk=50))
        assert guided.chunks_served < fixed.chunks_served

    def test_needs_a_worker(self):
        plat = small_platform()
        with pytest.raises(ValueError):
            run_master_worker(plat, plat.host_names[:1], 10)

    def test_zero_items(self):
        plat = small_platform()
        res = run_master_worker(plat, plat.host_names, 0)
        assert res.counts == (0, 0, 0)

    def test_adapts_to_unmodeled_load(self):
        """The baseline's selling point: under a load spike the static plan
        (computed from stale costs) degrades, master/worker adapts."""
        plat = table1_platform()
        hosts = table1_rank_hosts()
        n = 60_000
        static_counts = plan_counts(plat, hosts, n)

        spiked = table1_platform()
        spiked.hosts["caseb"].noise = SpikeNoise("caseb", 0.0, 1e9, slowdown=4.0)

        static = run_seismic_app(spiked, hosts, static_counts)
        dynamic = run_master_worker(
            spiked, hosts, n, policy=ChunkPolicy("guided", min_chunk=200)
        )
        assert dynamic.makespan < static.makespan
        # And the adaptive run sends the spiked host fewer items.
        spiked_share = dict(zip(dynamic.rank_hosts, dynamic.counts))["caseb"]
        static_share = dict(zip(hosts, static_counts))["caseb"]
        assert spiked_share < static_share

    def test_static_wins_on_predictable_grid(self):
        """The paper's claim (§6): dynamic balancing pays avoidable
        overheads when the grid is predictable."""
        plat = table1_platform()
        hosts = table1_rank_hosts()
        n = 60_000
        static = run_seismic_app(plat, hosts, plan_counts(plat, hosts, n))
        dynamic = run_master_worker(
            plat, hosts, n, policy=ChunkPolicy("fixed", chunk=1000)
        )
        assert static.makespan < dynamic.makespan
