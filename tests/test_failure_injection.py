"""Failure injection: broken inputs and crashing components must fail
loudly, with actionable errors — never hang or silently corrupt."""

import json

import pytest

from repro.core import LinearCost, Processor, ScatterProblem, TabulatedCost, ZeroCost
from repro.mpi import run_spmd
from repro.simgrid import DeadlockError, Host, Link, Platform


def small_platform(n=3):
    plat = Platform("fi")
    for i in range(n):
        plat.add_host(Host(f"h{i}", LinearCost(0.01)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(1e-3))
    return plat


class TestCrashingPrograms:
    def test_exception_in_program_propagates(self):
        plat = small_platform()

        def program(ctx):
            yield from ctx.compute(1)
            if ctx.rank == 1:
                raise RuntimeError("rank 1 crashed")
            return ctx.rank

        with pytest.raises(RuntimeError, match="rank 1 crashed"):
            run_spmd(plat, plat.host_names, program)

    def test_crashed_sender_starves_receiver(self):
        """A crash before a matching send must surface, not hang."""
        plat = small_platform()

        def program(ctx):
            if ctx.rank == 0:
                raise RuntimeError("died before sending")
            elif ctx.rank == 1:
                yield from ctx.recv(0)
            return None
            yield  # pragma: no cover

        with pytest.raises(RuntimeError, match="died before sending"):
            run_spmd(plat, plat.host_names, program)

    def test_partial_collective_deadlocks_loudly(self):
        """One rank skipping a collective is detected as a deadlock that
        names the stuck processes."""
        plat = small_platform()

        def program(ctx):
            if ctx.rank == 2:
                return "skipped the scatter"
            chunk = yield from ctx.scatterv(None, None, root=2)
            return chunk

        with pytest.raises(DeadlockError) as err:
            run_spmd(plat, plat.host_names, program)
        assert "h0" in str(err.value)

    def test_crashing_cost_function_surfaces(self):
        from repro.core import CallableCost

        def bad(x):
            if x > 5:
                raise ArithmeticError("cost model exploded")
            return float(x)

        prob = ScatterProblem(
            [
                Processor("bad", ZeroCost(), CallableCost(bad, increasing=True)),
                Processor.linear("root", 1.0, 0.0),
            ],
            10,
        )
        from repro.core import solve_dp_basic

        with pytest.raises(ArithmeticError, match="exploded"):
            solve_dp_basic(prob)


class TestCorruptInputs:
    def test_platform_load_corrupt_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            Platform.load(str(path))

    def test_platform_load_missing_fields(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"name": "x", "hosts": [{"name": "h"}]}))
        with pytest.raises(KeyError):
            Platform.load(str(path))

    def test_platform_bad_cost_type(self):
        with pytest.raises(ValueError, match="unknown cost type"):
            Platform.from_dict(
                {
                    "name": "x",
                    "hosts": [
                        {"name": "h", "comp_cost": {"type": "quantum"}}
                    ],
                    "links": [],
                }
            )

    def test_table_too_short_for_problem(self):
        prob = ScatterProblem(
            [
                Processor("short", ZeroCost(), TabulatedCost([0.0, 1.0])),
                Processor.linear("root", 1.0, 0.0),
            ],
            10,
        )
        with pytest.raises((ValueError, IndexError)):
            prob.check_valid()

    def test_cli_rewrite_missing_file(self):
        from repro.cli import main

        with pytest.raises(FileNotFoundError):
            main(["rewrite", "/nonexistent/app.c"])

    def test_transform_malformed_source(self):
        from repro.transform import TransformError, find_scatter_calls

        with pytest.raises(TransformError):
            find_scatter_calls("MPI_Scatter(a, b, c")  # unbalanced

    def test_negative_weights_rejected_everywhere(self):
        import numpy as np

        from repro.core import WeightedScatterProblem
        from repro.tomo import run_seismic_app
        from repro.workloads import table1_platform, table1_rank_hosts

        with pytest.raises(ValueError):
            WeightedScatterProblem(
                [Processor.linear("a", 1.0, 0.0)], np.array([1.0, -1.0])
            )
        # App-level: mismatched weight length.
        plat = table1_platform()
        hosts = table1_rank_hosts()
        with pytest.raises(ValueError):
            run_seismic_app(plat, hosts, [1] * 16, weights=np.ones(3))


class TestNumericEdges:
    def test_all_zero_cost_platform(self):
        """Degenerate free processors must not divide by zero."""
        prob = ScatterProblem(
            [
                Processor.linear("free", 0.0, 0.0),
                Processor.linear("root", 0.0, 0.0),
            ],
            10,
        )
        from repro.core import solve_dp_optimized, solve_rational

        dp = solve_dp_optimized(prob)
        assert dp.makespan == 0.0
        rat = solve_rational(prob)
        assert rat.duration == 0

    def test_huge_n_heuristic_stays_fast(self):
        """The heuristic must not degrade with n (no hidden O(n) path)."""
        import time

        from repro.core import solve_heuristic
        from repro.workloads import table1_problem

        t0 = time.perf_counter()
        res = solve_heuristic(table1_problem(10**9))
        assert time.perf_counter() - t0 < 5.0
        assert sum(res.counts) == 10**9

    def test_single_item_many_processors(self):
        from repro.core import plan_scatter
        from repro.workloads import table1_problem

        res = plan_scatter(table1_problem(1))
        assert sum(res.counts) == 1
        assert res.makespan > 0
