"""Tests for the chaos sweep (``repro.analysis.chaos``)."""

import pytest

from repro.analysis import chaos_plan, chaos_sweep
from repro.core import LinearCost
from repro.simgrid import Host, Link, Platform


def make_platform(p=4):
    plat = Platform("chaos-test")
    for i in range(p):
        plat.add_host(Host(f"h{i}", LinearCost(0.01 * (1 + 0.25 * i))))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(0.001))
    return plat


class TestChaosPlan:
    def test_nested_kill_sets(self):
        hosts = [f"h{i}" for i in range(9)] + ["root"]
        lower = chaos_plan(hosts, 0.25, seed=3, horizon=10.0)
        higher = chaos_plan(hosts, 0.75, seed=3, horizon=10.0)
        low_kills = {c.host for c in lower.crashes}
        high_kills = {c.host for c in higher.crashes}
        assert low_kills < high_kills  # strictly nested
        # Shared victims crash at identical times in both plans.
        low_times = {c.host: c.time for c in lower.crashes}
        high_times = {c.host: c.time for c in higher.crashes}
        for host in low_kills:
            assert low_times[host] == high_times[host]

    def test_never_kills_the_root(self):
        hosts = ["a", "b", "c", "root"]
        plan = chaos_plan(hosts, 1.0, seed=0, horizon=5.0)
        assert {c.host for c in plan.crashes} == {"a", "b", "c"}

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="failure rate"):
            chaos_plan(["a", "root"], 1.5, horizon=1.0)
        with pytest.raises(ValueError, match="horizon"):
            chaos_plan(["a", "root"], 0.5, horizon=0.0)


class TestChaosSweep:
    def run_sweep(self, rates=(0.0, 0.5), n=1200, seed=11):
        plat = make_platform()
        return chaos_sweep(plat, plat.host_names, n, list(rates), seed=seed)

    def test_rate_zero_replays_baseline(self):
        sweep = self.run_sweep()
        pt = sweep.points[0]
        assert pt.rate == 0.0
        assert pt.makespan == sweep.baseline_makespan
        assert pt.degradation == 1.0
        assert pt.dead == 0 and pt.lost_items == 0

    def test_degradation_monotone_and_accounted(self):
        sweep = self.run_sweep(rates=(0.0, 1 / 3, 2 / 3))
        degradations = [pt.degradation for pt in sweep.points]
        assert degradations == sorted(degradations)
        faulty = sweep.points[-1]
        assert faulty.dead >= 1
        assert faulty.replans >= 1
        # Conservation: everything computed either survived or was lost.
        assert faulty.computed_items + faulty.lost_items == sweep.n

    def test_deterministic(self):
        assert self.run_sweep().to_dict() == self.run_sweep().to_dict()
