"""Tests for the SVG renderers (parsed back as XML)."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis import figure_svg, gantt_svg
from repro.simgrid import TraceRecorder

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestFigureSvg:
    def make(self, **kwargs):
        return figure_svg(
            ["caseb", "leda#9", "dinadan"],
            [236.9, 500.1, 501.2],
            [0.5, 1.8, 26.8],
            [51069, 51069, 51068],
            title="Fig. 2",
            **kwargs,
        )

    def test_valid_xml(self):
        root = parse(self.make())
        assert root.tag == f"{SVG_NS}svg"

    def test_title_present(self):
        root = parse(self.make())
        texts = [t.text for t in root.iter(f"{SVG_NS}text")]
        assert "Fig. 2" in texts

    def test_processor_labels(self):
        root = parse(self.make())
        texts = [t.text for t in root.iter(f"{SVG_NS}text")]
        for name in ("caseb", "leda#9", "dinadan"):
            assert name in texts

    def test_three_bars_per_processor(self):
        # data bar + total bar + comm bar for each of 3 processors,
        # plus background/legend rects.
        root = parse(self.make())
        rects = list(root.iter(f"{SVG_NS}rect"))
        assert len(rects) >= 3 * 3

    def test_bar_widths_proportional(self):
        svg = figure_svg(["a", "b"], [10.0, 5.0], [0.0, 0.0], [1, 1])
        root = parse(svg)
        bars = [
            r for r in root.iter(f"{SVG_NS}rect")
            if r.get("fill") == "#228833" and r.get("height") == "12"
        ]
        widths = sorted(float(r.get("width")) for r in bars)
        assert widths[1] == pytest.approx(2 * widths[0], rel=1e-6)

    def test_escapes_special_chars(self):
        svg = figure_svg(["a<b>&c"], [1.0], [0.0], [1], title="x & y")
        parse(svg)  # must not raise

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            figure_svg(["a"], [1.0, 2.0], [0.0], [1])

    def test_zero_span(self):
        parse(figure_svg(["a"], [0.0], [0.0], [0]))


class TestGanttSvg:
    def make_recorder(self):
        rec = TraceRecorder()
        rec.record("P1", "receiving", 0.0, 1.0)
        rec.record("P1", "computing", 1.0, 4.0)
        rec.record("P4", "sending", 0.0, 2.0)
        rec.record("P4", "computing", 2.0, 5.0)
        return rec

    def test_valid_xml(self):
        svg = gantt_svg(self.make_recorder(), ["P1", "P4"], title="Fig. 1")
        root = parse(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_state_colors_present(self):
        svg = gantt_svg(self.make_recorder(), ["P1", "P4"])
        assert "#4477aa" in svg  # receiving
        assert "#ee6677" in svg  # sending
        assert "#228833" in svg  # computing

    def test_interval_positions_scale(self):
        rec = self.make_recorder()
        root = parse(gantt_svg(rec, ["P1", "P4"], width=760))
        # P4's sending rect covers 2/5 of the plot width.
        sends = [
            r for r in root.iter(f"{SVG_NS}rect")
            if r.get("fill") == "#ee6677" and r.get("height") == "14"
        ]
        assert len(sends) == 1
        plot_w = 760 - 130 - 30
        assert float(sends[0].get("width")) == pytest.approx(plot_w * 2 / 5, rel=1e-3)

    def test_default_names_sorted(self):
        svg = gantt_svg(self.make_recorder())
        parse(svg)

    def test_empty_recorder(self):
        parse(gantt_svg(TraceRecorder(), ["x"]))

    def test_from_simulated_run(self):
        from repro.core import uniform_counts
        from repro.tomo import run_seismic_app
        from repro.workloads import table1_platform, table1_rank_hosts

        plat = table1_platform()
        hosts = table1_rank_hosts()
        res = run_seismic_app(plat, hosts, uniform_counts(2000, 16))
        svg = gantt_svg(res.run.recorder, res.run.trace_names, title="run")
        root = parse(svg)
        labels = [t.text for t in root.iter(f"{SVG_NS}text")]
        assert "dinadan" in labels
