"""Tests for the sensitivity sweeps."""

import math

import pytest

from repro.analysis import (
    ParallelSweepEvaluator,
    SequentialSweepEvaluator,
    SweepPoint,
    comm_ratio_sweep,
    gain_for_problem,
    heterogeneity_sweep,
    problem_size_sweep,
)
from repro.analysis.sweep import _spread_processors
from repro.core import ScatterProblem


class TestSpreadProcessors:
    def test_alpha_span(self):
        procs = _spread_processors(10, 4.0)
        alphas = [float(p.alpha) for p in procs[:-1]]
        assert max(alphas) / min(alphas) == pytest.approx(4.0)

    def test_homogeneous(self):
        procs = _spread_processors(6, 1.0)
        alphas = {float(p.alpha) for p in procs}
        assert len(alphas) == 1

    def test_beta_spread_independent(self):
        procs = _spread_processors(8, 8.0, beta_spread=1.0)
        betas = {float(p.beta) for p in procs[:-1]}
        assert len(betas) == 1

    def test_root_free_link(self):
        procs = _spread_processors(5, 2.0)
        assert procs[-1].beta == 0

    def test_random_mode_deterministic_per_seed(self):
        import random

        a = _spread_processors(6, 4.0, rng=random.Random(1))
        b = _spread_processors(6, 4.0, rng=random.Random(1))
        assert [p.alpha for p in a] == [p.alpha for p in b]

    def test_invalid_spread(self):
        with pytest.raises(ValueError):
            _spread_processors(4, 0.5)


class TestSweepPoint:
    def test_gain(self):
        pt = SweepPoint(1.0, 100.0, 50.0)
        assert pt.gain == 2.0

    def test_zero_balanced(self):
        assert SweepPoint(1.0, 0.0, 0.0).gain == 1.0


class TestGainForProblem:
    def test_homogeneous_no_gain(self):
        prob = ScatterProblem(_spread_processors(8, 1.0), 10_000)
        assert gain_for_problem(prob).gain == pytest.approx(1.0, abs=0.02)

    def test_heterogeneous_gain(self):
        prob = ScatterProblem(_spread_processors(8, 8.0), 10_000)
        assert gain_for_problem(prob).gain > 1.5


class TestSweeps:
    def test_heterogeneity_monotone(self):
        gains = [pt.gain for pt in heterogeneity_sweep([1.0, 4.0, 16.0], p=8, n=5000)]
        assert gains[0] < gains[1] < gains[2]

    def test_comm_ratio_collapse(self):
        points = comm_ratio_sweep([0.01, 10.0], p=8, n=5000)
        assert points[0].gain > points[1].gain

    def test_problem_size_stabilizes(self):
        points = problem_size_sweep([1_000, 50_000])
        assert points[0].gain == pytest.approx(points[1].gain, rel=0.05)

    def test_custom_factory(self):
        from repro.workloads import random_linear_problem
        import random

        rng = random.Random(0)
        base = random_linear_problem(rng, 5, 1)

        points = problem_size_sweep([100, 200], problem_factory=base.with_n)
        assert len(points) == 2
        assert all(not math.isnan(pt.gain) for pt in points)


class TestEvaluators:
    """The batch layer: parallel evaluation must not change any value."""

    def test_sequential_map_preserves_order(self):
        ev = SequentialSweepEvaluator()
        assert ev.map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    def test_parallel_map_matches_sequential(self):
        with ParallelSweepEvaluator(4) as ev:
            assert ev.map(lambda x: x * x, list(range(20))) == [
                x * x for x in range(20)
            ]

    def test_single_worker_falls_back_to_sequential(self):
        ev = ParallelSweepEvaluator(1)
        assert ev._pool is None
        assert ev.map(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelSweepEvaluator(2, backend="gpu")

    @pytest.mark.parametrize("workers", [2, 4])
    def test_all_sweeps_identical_parallel_vs_sequential(self, workers):
        spreads, ratios, sizes = [1.0, 4.0, 8.0], [0.01, 1.0], [500, 2000]
        seq = (
            heterogeneity_sweep(spreads, p=6, n=2000),
            comm_ratio_sweep(ratios, p=6, n=2000),
            problem_size_sweep(sizes),
        )
        with ParallelSweepEvaluator(workers) as ev:
            par = (
                heterogeneity_sweep(spreads, p=6, n=2000, evaluator=ev),
                comm_ratio_sweep(ratios, p=6, n=2000, evaluator=ev),
                problem_size_sweep(sizes, evaluator=ev),
            )
        assert seq == par  # SweepPoint equality is exact, not approximate

    def test_close_is_idempotent(self):
        ev = ParallelSweepEvaluator(2)
        ev.close()
        ev.close()
        assert ev.map(lambda x: x, [5]) == [5]

    def test_unknown_cache_tier_rejected(self):
        with pytest.raises(ValueError, match="cache_tier"):
            ParallelSweepEvaluator(2, cache_tier="l4")


def _makespan_at(n):
    """Module-level (picklable) DP solve — exercises the cost-table cache."""
    from repro.core.dp_fast import solve_dp_fast
    from repro.workloads.table1 import table1_problem

    return solve_dp_fast(table1_problem(n)).makespan


def _shm_entries(prefix):
    import os

    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith(prefix)]
    except OSError:  # pragma: no cover - non-Linux
        return []


class TestProcessPoolMetrics:
    """Counters accrued in pool workers must surface in the parent."""

    def test_worker_metrics_merged_into_parent(self):
        from repro.obs.metrics import METRICS

        misses = METRICS.counter("core.cost_cache.misses")
        m0 = misses.value
        with ParallelSweepEvaluator(2, backend="process") as ev:
            vals = ev.map(_makespan_at, [500, 600, 700, 800])
        assert vals == [_makespan_at(n) for n in [500, 600, 700, 800]]
        # Each worker solve tabulates p=5 link + p=5 compute tables in its
        # own process; all four items' deltas must land here.
        assert misses.value - m0 >= 4 * 10

    def test_shared_tier_values_and_metrics(self):
        from repro.core.costs import DEFAULT_COST_CACHE, get_default_cost_cache
        from repro.obs.metrics import METRICS

        ns_prefix = "rsweep"
        sizes = [500, 600, 700, 800]
        seq = [_makespan_at(n) for n in sizes]
        shared_events = METRICS.counter("core.cost_cache.shared.hits")
        published = METRICS.counter("core.cost_cache.shared.misses")
        h0, p0 = shared_events.value, published.value
        with ParallelSweepEvaluator(
            2, backend="process", cache_tier="shared"
        ) as ev:
            assert get_default_cost_cache() is ev._shared_cache
            # Publish from the parent first: workers then *attach* to these
            # segments instead of re-deriving the tables (their local LRUs
            # start empty, so the hit must come from the shared tier).
            assert _makespan_at(sizes[0]) == seq[0]
            par = ev.map(_makespan_at, sizes)
        assert par == seq
        # Every table went through the shared tier exactly once...
        assert published.value - p0 >= 1
        # ...and at least one worker attached instead of rebuilding.
        assert shared_events.value - h0 >= 1
        # Close restores the default tier and unlinks every segment.
        assert get_default_cost_cache() is DEFAULT_COST_CACHE
        assert _shm_entries(ns_prefix) == []

    def test_shared_tier_with_thread_backend(self):
        from repro.core.costs import DEFAULT_COST_CACHE, get_default_cost_cache

        sizes = [300, 400]
        seq = [_makespan_at(n) for n in sizes]
        with ParallelSweepEvaluator(2, backend="thread", cache_tier="shared") as ev:
            assert ev._shared_cache is not None
            assert ev.map(_makespan_at, sizes) == seq
        assert get_default_cost_cache() is DEFAULT_COST_CACHE

    def test_sweep_values_identical_under_shared_tier(self):
        spreads = [1.0, 4.0, 8.0]
        seq = heterogeneity_sweep(spreads, p=6, n=2000)
        with ParallelSweepEvaluator(
            2, backend="process", cache_tier="shared"
        ) as ev:
            par = heterogeneity_sweep(spreads, p=6, n=2000, evaluator=ev)
        assert seq == par


def _boom(_):
    raise RuntimeError("injected evaluation failure")


class TestEvaluatorExceptionSafety:
    """A crashing evaluation must not leak shm segments or cache state."""

    def test_map_crash_inside_context_leaves_no_segments(self):
        from repro.core.costs import DEFAULT_COST_CACHE, get_default_cost_cache

        ns = None
        with pytest.raises(RuntimeError, match="injected"):
            with ParallelSweepEvaluator(
                2, backend="process", cache_tier="shared"
            ) as ev:
                ns = ev._shared_cache.namespace
                ev.map(_makespan_at, [300])  # publish at least one segment
                assert _shm_entries(ns + "_")
                ev.map(_boom, [1, 2, 3])
        assert _shm_entries(ns + "_") == []
        assert get_default_cost_cache() is DEFAULT_COST_CACHE

    def test_thread_backend_crash_inside_context(self):
        from repro.core.costs import DEFAULT_COST_CACHE, get_default_cost_cache

        with pytest.raises(RuntimeError, match="injected"):
            with ParallelSweepEvaluator(
                2, backend="thread", cache_tier="shared"
            ) as ev:
                ns = ev._shared_cache.namespace
                ev.map(_makespan_at, [300])
                ev.map(_boom, [1])
        assert _shm_entries(ns + "_") == []
        assert get_default_cost_cache() is DEFAULT_COST_CACHE

    def test_pool_creation_failure_restores_cache_and_segments(self, monkeypatch):
        import repro.analysis.sweep as sweep_mod
        from repro.core.costs import DEFAULT_COST_CACHE, get_default_cost_cache

        def exploding_pool(*args, **kwargs):
            raise MemoryError("injected pool failure")

        monkeypatch.setattr(sweep_mod, "ThreadPool", exploding_pool)
        with pytest.raises(MemoryError, match="injected pool"):
            ParallelSweepEvaluator(2, backend="thread", cache_tier="shared")
        assert get_default_cost_cache() is DEFAULT_COST_CACHE
        assert _shm_entries("rsweep") == []

    def test_dropped_evaluator_finalizer_unlinks_segments(self):
        import gc

        ev = ParallelSweepEvaluator(2, backend="thread", cache_tier="shared")
        ns = ev._shared_cache.namespace
        ev.map(_makespan_at, [300])
        assert _shm_entries(ns + "_")
        fin = ev._finalizer
        del ev
        gc.collect()
        assert not fin.alive
        assert _shm_entries(ns + "_") == []
        # The default-cache swap is NOT undone by the GC backstop (that
        # would yank the tier out from under unrelated threads); restore
        # it here to keep the test process clean.
        from repro.core.costs import set_default_cost_cache

        set_default_cost_cache(None)


class TestEvaluatorSubmit:
    """The async single-item path used by the serve layer."""

    def test_sequential_submit_inline(self):
        got = []
        SequentialSweepEvaluator().submit(lambda x: x * 2, 21, got.append)
        assert got == [42]

    def test_sequential_submit_error_callback(self):
        errs = []
        SequentialSweepEvaluator().submit(_boom, 1, error_callback=errs.append)
        assert len(errs) == 1 and "injected" in str(errs[0])

    def test_sequential_submit_raises_without_error_callback(self):
        with pytest.raises(RuntimeError, match="injected"):
            SequentialSweepEvaluator().submit(_boom, 1)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_submit_delivers_result(self, backend):
        import threading

        done = threading.Event()
        got = []
        with ParallelSweepEvaluator(2, backend=backend) as ev:
            ev.submit(_makespan_at, 300,
                      callback=lambda r: (got.append(r), done.set()))
            assert done.wait(timeout=60)
        assert got == [_makespan_at(300)]

    def test_pool_submit_error_callback(self):
        import threading

        done = threading.Event()
        errs = []
        with ParallelSweepEvaluator(2, backend="thread") as ev:
            ev.submit(_boom, 1,
                      error_callback=lambda e: (errs.append(e), done.set()))
            assert done.wait(timeout=60)
        assert "injected" in str(errs[0])

    def test_process_submit_merges_worker_metrics(self):
        from repro.obs.metrics import METRICS

        import threading

        done = threading.Event()
        hits = METRICS.counter("core.cost_cache.hits")
        misses = METRICS.counter("core.cost_cache.misses")
        t0 = hits.value + misses.value
        with ParallelSweepEvaluator(2, backend="process") as ev:
            ev.submit(_makespan_at, 500, callback=lambda r: done.set())
            assert done.wait(timeout=60)
        # The worker's table lookups (hits against the fork-inherited
        # cache, or misses on a cold one) surfaced in the parent.
        assert hits.value + misses.value > t0
