"""Tests for the plain-text report renderers."""

import pytest

from repro.analysis import format_seconds, render_figure, render_table


class TestFormatSeconds:
    def test_large(self):
        assert format_seconds(853.2).strip() == "853.2s"

    def test_medium(self):
        assert format_seconds(4.25).strip() == "4.250s"

    def test_small(self):
        assert format_seconds(0.00123).strip() == "0.00123s"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["Name", "Value"], [("a", 1), ("long-name", 22)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # all same width

    def test_title(self):
        out = render_table(["h"], [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = render_table(["x"], [(0.000123456789,)])
        assert "0.000123457" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderFigure:
    def test_rows_and_scale(self):
        out = render_figure(
            ["w1", "w2"], [10.0, 5.0], [1.0, 0.5], [100, 50], title="Fig"
        )
        lines = out.splitlines()
        assert lines[0] == "Fig"
        assert len(lines) == 4  # title + 2 rows + scale
        assert "data      100" in lines[1]

    def test_bar_lengths_proportional(self):
        out = render_figure(["a", "b"], [10.0, 5.0], [0.0, 0.0], [1, 1], width=20)
        rows = out.splitlines()[:2]
        assert rows[0].count("#") == 2 * rows[1].count("#")

    def test_comm_prefix_marked(self):
        out = render_figure(["a"], [10.0], [5.0], [1], width=20)
        assert "r" * 10 in out

    def test_zero_span(self):
        out = render_figure(["a"], [0.0], [0.0], [0])
        assert "a" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_figure(["a"], [1.0, 2.0], [0.0], [1])
