"""Tests for experiment metrics."""

import pytest

from repro.analysis import ExperimentSummary, imbalance, speedup, summarize


class TestImbalance:
    def test_perfect_balance(self):
        assert imbalance([10.0, 10.0, 10.0]) == 0.0

    def test_half_spread(self):
        assert imbalance([5.0, 10.0]) == pytest.approx(0.5)

    def test_idle_ranks_excluded_via_counts(self):
        assert imbalance([0.0, 10.0, 9.0], counts=[0, 5, 5]) == pytest.approx(0.1)

    def test_zero_finish_excluded(self):
        assert imbalance([0.0, 10.0, 10.0]) == 0.0

    def test_empty(self):
        assert imbalance([]) == 0.0


class TestSpeedup:
    def test_ratio(self):
        assert speedup(850.0, 425.0) == pytest.approx(2.0)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestSummarize:
    def test_fields(self):
        s = summarize(
            "fig3", [400.0, 405.0, 410.0], [1.0, 2.0, 0.0], counts=[10, 10, 10]
        )
        assert s.label == "fig3"
        assert s.makespan == 410.0
        assert s.earliest_finish == 400.0
        assert s.latest_finish == 410.0
        assert s.imbalance == pytest.approx(10.0 / 410.0)
        assert s.total_comm_time == 3.0

    def test_idle_ranks_skipped_for_earliest(self):
        s = summarize("x", [0.0, 100.0, 90.0], [0.0, 0.0, 0.0], counts=[0, 5, 5])
        assert s.earliest_finish == 90.0

    def test_row_shape(self):
        s = ExperimentSummary("x", 1.0, 0.5, 1.0, 0.5, 0.1)
        row = s.row()
        assert row[0] == "x"
        assert len(row) == 6

    def test_stair_area_passthrough(self):
        s = summarize("x", [1.0], [0.0], stair_area=42.0)
        assert s.stair_area == 42.0
