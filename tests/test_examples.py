"""Every shipped example must run green (deliverable smoke tests).

Each script is executed as a subprocess, exactly as a user would run it,
with a small problem size where the script accepts one.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

CASES = [
    ("quickstart.py", []),
    ("seismic_tomography.py", ["2000"]),
    ("ordering_and_root.py", []),
    ("custom_platform.py", []),
    ("adaptive_inversion.py", []),
    ("ray_coverage.py", ["2000"]),
    ("weighted_rays.py", ["4000"]),
    ("fault_tolerant_scatter.py", ["4000"]),
]


def run_example(name, args):
    path = os.path.join(EXAMPLES_DIR, name)
    return subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs_clean(name, args):
    result = run_example(name, args)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_are_listed():
    """A new example script must be added to CASES (and the README)."""
    present = {
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    }
    listed = {name for name, _ in CASES}
    assert present == listed


class TestExampleContent:
    def test_quickstart_shows_speedup(self):
        out = run_example("quickstart.py", []).stdout
        assert "speedup" in out
        assert "balanced" in out

    def test_seismic_prints_all_three_figures(self):
        out = run_example("seismic_tomography.py", ["1500"]).stdout
        for fig in ("Fig. 2", "Fig. 3", "Fig. 4"):
            assert fig in out

    def test_weighted_shows_three_plans(self):
        out = run_example("weighted_rays.py", ["3000"]).stdout
        assert "count-balanced" in out and "weight-aware" in out
