"""Monitoring under faults: the daemon must survive host crashes.

Satellite requirement: a host crash mid-run must not raise inside the
daemon, and the crashed host's observation series must stop growing while
it is down.  The :class:`FailureDetector` fed by the daemon's heartbeats
must converge on the injected failure within one suspect threshold.
"""

import pytest

from repro.core import LinearCost
from repro.monitor import FailureDetector, LoadMonitor, MonitorDaemon
from repro.mpi import run_spmd
from repro.simgrid import FaultPlan, Host, HostFailure, Link, Platform


def make_platform(p=4):
    plat = Platform("monitor-faults")
    for i in range(p):
        plat.add_host(Host(f"h{i}", LinearCost(0.01)))
    names = plat.host_names
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            plat.connect(u, v, Link.linear(0.001))
    return plat


def program(ctx, n, counts, root):
    chunk = yield from ctx.scatterv(
        list(range(n)) if ctx.rank == root else None,
        counts if ctx.rank == root else None,
        root=root,
    )
    yield from ctx.compute(10 * len(chunk))
    return len(chunk)


def run_with_daemon(plat, faults, *, period=1.0, detector=None, p=4, n=400):
    hosts = plat.host_names
    monitor = LoadMonitor()
    daemon = MonitorDaemon(
        plat, monitor, period=period, faults=faults, detector=detector
    )
    counts = [n // p] * p
    run = run_spmd(
        plat,
        hosts,
        program,
        n,
        counts,
        p - 1,
        before_run=daemon.attach,
        faults=faults,
    )
    return run, daemon, monitor


class TestDaemonUnderFaults:
    def test_crash_does_not_raise_and_stops_recording(self):
        plat = make_platform()
        crash_at = 2.5
        faults = FaultPlan().crash("h1", at=crash_at)
        run, daemon, monitor = run_with_daemon(plat, faults)

        # The crashed rank failed; the run itself completed.
        assert isinstance(run.results[1], HostFailure)
        assert daemon.samples_taken >= 2
        # h1's series stops at the crash; live hosts keep being sampled.
        assert all(obs.time < crash_at for obs in monitor.history["h1"])
        assert len(monitor.history["h0"]) == daemon.samples_taken
        assert len(monitor.history["h1"]) < len(monitor.history["h0"])

    def test_recovered_host_resumes_recording(self):
        plat = make_platform()
        faults = FaultPlan().crash("h1", at=1.5).recover("h1", at=3.5)
        run, daemon, monitor = run_with_daemon(plat, faults, n=2000)
        times = [obs.time for obs in monitor.history["h1"]]
        assert any(t < 1.5 for t in times)
        assert not any(1.5 <= t < 3.5 for t in times)  # silent while down
        if run.duration > 3.5:
            assert any(t >= 3.5 for t in times)  # heard again after recovery

    def test_detector_converges_on_injected_crash(self):
        plat = make_platform()
        detector = FailureDetector(suspect_threshold=2.0)
        faults = FaultPlan().crash("h1", at=2.5)
        run, _, _ = run_with_daemon(
            plat, faults, period=1.0, detector=detector, n=4000
        )
        now = run.duration
        assert now > 2.5 + 2.0, "run too short for the detector to converge"
        assert detector.is_suspect("h1", now)
        assert "h1" in detector.suspects(now)
        assert detector.view(plat.host_names, now)["h1"] == "suspect"
        for h in ("h0", "h2", "h3"):
            assert detector.view(plat.host_names, now)[h] == "alive"


class TestFailureDetector:
    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="suspect_threshold"):
            FailureDetector(suspect_threshold=0.0)

    def test_heartbeat_is_monotone(self):
        det = FailureDetector(suspect_threshold=5.0)
        det.heartbeat("a", 10.0)
        det.heartbeat("a", 7.0)  # stale heartbeat must not rewind
        assert det.last_heard["a"] == 10.0

    def test_silence_and_suspicion(self):
        det = FailureDetector(suspect_threshold=5.0)
        assert det.silence("a", 100.0) is None
        assert not det.is_suspect("a", 100.0)  # never heard -> unknown
        det.heartbeat("a", 10.0)
        assert det.silence("a", 12.0) == pytest.approx(2.0)
        assert not det.is_suspect("a", 15.0)  # exactly at threshold
        assert det.is_suspect("a", 15.1)

    def test_view_partitions_hosts(self):
        det = FailureDetector(suspect_threshold=1.0)
        det.heartbeat("alive", 9.5)
        det.heartbeat("dead", 2.0)
        view = det.view(["alive", "dead", "never"], 10.0)
        assert view == {"alive": "alive", "dead": "suspect", "never": "unknown"}
        assert det.alive(10.0) == ["alive"]
        assert det.suspects(10.0) == ["dead"]
