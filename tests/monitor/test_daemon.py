"""Tests for the in-simulation monitoring daemon."""

import pytest

from repro.core import uniform_counts
from repro.monitor import LoadMonitor, MonitorDaemon, plan_with_monitor
from repro.mpi import run_spmd
from repro.simgrid import SpikeNoise
from repro.tomo import run_seismic_app, seismic_program
from repro.workloads import table1_platform, table1_rank_hosts


def run_with_daemon(platform, n=20_000, period=5.0, monitor=None):
    hosts = table1_rank_hosts()
    monitor = monitor if monitor is not None else LoadMonitor()
    daemon = MonitorDaemon(platform, monitor, period=period)
    counts = list(uniform_counts(n, len(hosts)))
    run = run_spmd(
        platform,
        hosts,
        seismic_program,
        range(n),
        counts,
        len(hosts) - 1,
        None,
        False,
        None,
        before_run=daemon.attach,
    )
    return run, daemon, monitor


class TestMonitorDaemon:
    def test_samples_cover_the_run(self):
        plat = table1_platform()
        run, daemon, monitor = run_with_daemon(plat, period=5.0)
        # One sample at t=0 plus one per period until the app ends.
        expected = int(run.duration // 5.0) + 1
        assert daemon.samples_taken == pytest.approx(expected, abs=1)
        assert len(monitor.history["dinadan"]) == daemon.samples_taken

    def test_daemon_does_not_prolong_run(self):
        plat = table1_platform()
        bare = run_seismic_app(
            plat, table1_rank_hosts(), uniform_counts(20_000, 16)
        )
        run, _, _ = run_with_daemon(plat)
        assert run.duration == pytest.approx(bare.makespan)

    def test_observes_mid_run_spike(self):
        """A spike that begins mid-run is invisible to a pre-run sampler
        but captured by the in-run daemon."""
        plat = table1_platform()
        run_probe, *_ = run_with_daemon(plat)
        half = run_probe.duration / 2

        spiked = table1_platform()
        spiked.hosts["caseb"].noise = SpikeNoise("caseb", half, 1e12, slowdown=3.0)

        _, _, monitor = run_with_daemon(spiked, period=run_probe.duration / 20)
        loads = [obs.load for obs in monitor.history["caseb"]]
        assert loads[0] == 1.0  # before the spike
        assert 3.0 in loads  # captured after it began
        assert monitor.forecast("caseb") > 1.0

    def test_forecast_feeds_next_plan(self):
        plat = table1_platform()
        plat.hosts["sekhmet"].noise = SpikeNoise("sekhmet", 0.0, 1e12, slowdown=2.0)
        _, _, monitor = run_with_daemon(plat)
        hosts = table1_rank_hosts()
        counts, _ = plan_with_monitor(plat, hosts, 20_000, monitor)
        replanned = run_seismic_app(plat, hosts, counts)
        stale = run_seismic_app(plat, hosts, uniform_counts(20_000, 16))
        assert replanned.makespan < stale.makespan

    def test_cannot_attach_twice(self):
        def noop(ctx):
            return None
            yield  # pragma: no cover

        plat = table1_platform()
        daemon = MonitorDaemon(plat, LoadMonitor(), period=1.0)
        run_spmd(plat, ["dinadan"], noop, before_run=daemon.attach)
        with pytest.raises(RuntimeError, match="already attached"):
            run_spmd(plat, ["dinadan"], noop, before_run=daemon.attach)

    def test_period_validation(self):
        with pytest.raises(ValueError):
            MonitorDaemon(table1_platform(), LoadMonitor(), period=0.0)
