"""Tests for the FailureDetector suspect-transition accounting."""

import pytest

from repro.monitor.failures import FailureDetector
from repro.obs import METRICS


class TestDetectorBasics:
    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="suspect_threshold"):
            FailureDetector(suspect_threshold=0)

    def test_never_heard_is_not_suspect(self):
        det = FailureDetector(suspect_threshold=5.0)
        assert not det.is_suspect("ghost", now=100.0)
        assert det.silence("ghost", 100.0) is None
        assert det.view(["ghost"], 100.0) == {"ghost": "unknown"}

    def test_heartbeat_keeps_host_alive(self):
        det = FailureDetector(suspect_threshold=5.0)
        det.heartbeat("h", 0.0)
        assert not det.is_suspect("h", now=5.0)  # exactly at threshold
        assert det.is_suspect("h", now=5.1)

    def test_stale_heartbeat_ignored(self):
        det = FailureDetector(suspect_threshold=5.0)
        det.heartbeat("h", 10.0)
        det.heartbeat("h", 3.0)  # out-of-order delivery
        assert det.last_heard["h"] == 10.0


class TestTransitionCounting:
    def test_alive_to_suspect_counts_once(self):
        det = FailureDetector(suspect_threshold=5.0)
        metric = METRICS.counter("monitor.detector.suspect_transitions")
        before = metric.value
        det.heartbeat("h", 0.0)
        det.is_suspect("h", 1.0)
        assert det.suspect_transitions == 0
        # repeated queries while suspect must not re-count the transition
        for now in (6.0, 7.0, 8.0):
            assert det.is_suspect("h", now)
        assert det.suspect_transitions == 1
        assert metric.value == before + 1

    def test_recovery_counts_and_can_repeat(self):
        det = FailureDetector(suspect_threshold=5.0)
        metric = METRICS.counter("monitor.detector.suspect_recoveries")
        before = metric.value
        det.heartbeat("h", 0.0)
        assert det.is_suspect("h", 6.0)  # alive -> suspect
        det.heartbeat("h", 7.0)  # host came back
        assert not det.is_suspect("h", 8.0)  # suspect -> alive
        assert det.suspect_recoveries == 1
        assert metric.value == before + 1
        # second crash/recovery cycle counts again
        assert det.is_suspect("h", 20.0)
        det.heartbeat("h", 21.0)
        assert not det.is_suspect("h", 22.0)
        assert det.suspect_transitions == 2
        assert det.suspect_recoveries == 2

    def test_per_host_independence(self):
        det = FailureDetector(suspect_threshold=5.0)
        det.heartbeat("a", 0.0)
        det.heartbeat("b", 0.0)
        det.heartbeat("b", 9.0)
        assert det.suspects(10.0) == ["a"]
        assert det.alive(10.0) == ["b"]
        assert det.suspect_transitions == 1

    def test_unknown_host_never_transitions(self):
        det = FailureDetector(suspect_threshold=5.0)
        det.is_suspect("ghost", 100.0)
        det.is_suspect("ghost", 200.0)
        assert det.suspect_transitions == 0
        assert det.suspect_recoveries == 0


class TestHysteresis:
    def test_margin_validation(self):
        with pytest.raises(ValueError, match="recovery_margin"):
            FailureDetector(suspect_threshold=5.0, recovery_margin=5.0)
        with pytest.raises(ValueError, match="recovery_margin"):
            FailureDetector(suspect_threshold=5.0, recovery_margin=-0.1)
        with pytest.raises(ValueError, match="recovery_heartbeats"):
            FailureDetector(suspect_threshold=5.0, recovery_heartbeats=-1)

    def test_defaults_reproduce_margin_free_behaviour(self):
        plain = FailureDetector(suspect_threshold=5.0)
        hyst = FailureDetector(
            suspect_threshold=5.0, recovery_margin=0.0, recovery_heartbeats=0
        )
        for det in (plain, hyst):
            det.heartbeat("h", 0.0)
            assert det.is_suspect("h", 6.0)
            det.heartbeat("h", 1.5)  # stale: quiet drops to 4.5 only via clock
            assert det.is_suspect("h", 6.0) == plain.is_suspect("h", 6.0)

    def test_margin_damps_threshold_hover(self):
        # quiet oscillates around the threshold: without a margin this host
        # flaps suspect<->alive; with the margin it stays suspected until
        # silence drops clearly below threshold - margin.
        det = FailureDetector(suspect_threshold=5.0, recovery_margin=2.0)
        det.heartbeat("h", 0.0)
        assert det.is_suspect("h", 5.1)  # quiet 5.1 > 5.0: suspect
        det.heartbeat("h", 0.4)  # stale, ignored
        # A fresh-but-old beat pulls quiet back just under threshold...
        det.heartbeat("h", 0.5)
        assert det.is_suspect("h", 5.2)  # quiet 4.7: inside margin band, held
        det.heartbeat("h", 4.0)
        assert not det.is_suspect("h", 5.3)  # quiet 1.3 <= 3.0: recovered
        assert det.suspect_transitions == 1
        assert det.suspect_recoveries == 1

    def test_fresh_heartbeats_clear_inside_margin(self):
        det = FailureDetector(
            suspect_threshold=5.0, recovery_margin=2.0, recovery_heartbeats=2
        )
        det.heartbeat("h", 0.0)
        assert det.is_suspect("h", 6.0)
        det.heartbeat("h", 1.0)  # 1 fresh beat: not enough
        assert det.is_suspect("h", 5.5)  # quiet 4.5, in band, 1 < 2 beats
        det.heartbeat("h", 1.2)  # 2nd fresh beat vouches for the host
        assert not det.is_suspect("h", 5.6)
        assert det.suspect_recoveries == 1

    def test_stale_beats_do_not_count_as_fresh(self):
        det = FailureDetector(
            suspect_threshold=5.0, recovery_margin=2.0, recovery_heartbeats=2
        )
        det.heartbeat("h", 2.0)
        assert det.is_suspect("h", 8.0)
        det.heartbeat("h", 1.0)  # stale (before last_heard): ignored
        det.heartbeat("h", 1.5)  # stale: ignored
        assert det.is_suspect("h", 8.1)  # still suspected, 0 fresh beats

    def test_flap_metric_counts_rapid_oscillation(self):
        metric = METRICS.counter("monitor.detector.flaps")
        before = metric.value
        det = FailureDetector(suspect_threshold=5.0)
        det.heartbeat("h", 0.0)
        assert det.is_suspect("h", 6.0)
        det.heartbeat("h", 7.0)
        assert not det.is_suspect("h", 8.0)  # recovery at t=8
        # Re-suspected within one threshold of the recovery: a flap.
        assert det.is_suspect("h", 12.5)
        assert det.flaps == 1
        assert metric.value == before + 1
        # A later, slow re-suspicion is not a flap.
        det.heartbeat("h", 13.0)
        assert not det.is_suspect("h", 14.0)
        assert det.is_suspect("h", 40.0)  # 26s after recovery: no flap
        assert det.flaps == 1

    def test_margin_prevents_flaps(self):
        # Same oscillating trace, with and without hysteresis: the margin
        # must strictly reduce the flap count.
        def drive(det):
            det.heartbeat("h", 0.0)
            for step in range(1, 6):
                base = step * 8.0
                det.is_suspect("h", base - 4.0)
                det.heartbeat("h", base - 4.9)  # quiet hovers near threshold
                det.is_suspect("h", base)
            return det.flaps

        flappy = drive(FailureDetector(suspect_threshold=5.0))
        damped = drive(
            FailureDetector(suspect_threshold=5.0, recovery_margin=2.0)
        )
        assert flappy > 0
        assert damped < flappy
