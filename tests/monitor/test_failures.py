"""Tests for the FailureDetector suspect-transition accounting."""

import pytest

from repro.monitor.failures import FailureDetector
from repro.obs import METRICS


class TestDetectorBasics:
    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="suspect_threshold"):
            FailureDetector(suspect_threshold=0)

    def test_never_heard_is_not_suspect(self):
        det = FailureDetector(suspect_threshold=5.0)
        assert not det.is_suspect("ghost", now=100.0)
        assert det.silence("ghost", 100.0) is None
        assert det.view(["ghost"], 100.0) == {"ghost": "unknown"}

    def test_heartbeat_keeps_host_alive(self):
        det = FailureDetector(suspect_threshold=5.0)
        det.heartbeat("h", 0.0)
        assert not det.is_suspect("h", now=5.0)  # exactly at threshold
        assert det.is_suspect("h", now=5.1)

    def test_stale_heartbeat_ignored(self):
        det = FailureDetector(suspect_threshold=5.0)
        det.heartbeat("h", 10.0)
        det.heartbeat("h", 3.0)  # out-of-order delivery
        assert det.last_heard["h"] == 10.0


class TestTransitionCounting:
    def test_alive_to_suspect_counts_once(self):
        det = FailureDetector(suspect_threshold=5.0)
        metric = METRICS.counter("monitor.detector.suspect_transitions")
        before = metric.value
        det.heartbeat("h", 0.0)
        det.is_suspect("h", 1.0)
        assert det.suspect_transitions == 0
        # repeated queries while suspect must not re-count the transition
        for now in (6.0, 7.0, 8.0):
            assert det.is_suspect("h", now)
        assert det.suspect_transitions == 1
        assert metric.value == before + 1

    def test_recovery_counts_and_can_repeat(self):
        det = FailureDetector(suspect_threshold=5.0)
        metric = METRICS.counter("monitor.detector.suspect_recoveries")
        before = metric.value
        det.heartbeat("h", 0.0)
        assert det.is_suspect("h", 6.0)  # alive -> suspect
        det.heartbeat("h", 7.0)  # host came back
        assert not det.is_suspect("h", 8.0)  # suspect -> alive
        assert det.suspect_recoveries == 1
        assert metric.value == before + 1
        # second crash/recovery cycle counts again
        assert det.is_suspect("h", 20.0)
        det.heartbeat("h", 21.0)
        assert not det.is_suspect("h", 22.0)
        assert det.suspect_transitions == 2
        assert det.suspect_recoveries == 2

    def test_per_host_independence(self):
        det = FailureDetector(suspect_threshold=5.0)
        det.heartbeat("a", 0.0)
        det.heartbeat("b", 0.0)
        det.heartbeat("b", 9.0)
        assert det.suspects(10.0) == ["a"]
        assert det.alive(10.0) == ["b"]
        assert det.suspect_transitions == 1

    def test_unknown_host_never_transitions(self):
        det = FailureDetector(suspect_threshold=5.0)
        det.is_suspect("ghost", 100.0)
        det.is_suspect("ghost", 200.0)
        assert det.suspect_transitions == 0
        assert det.suspect_recoveries == 0
