"""Tests for the load monitor and monitor-informed planning."""

import pytest

from repro.core import (
    AffineCost,
    LinearCost,
    PiecewiseLinearCost,
    Processor,
    ScatterProblem,
    TabulatedCost,
    ZeroCost,
)
from repro.monitor import LoadMonitor, plan_with_monitor, scale_cost
from repro.simgrid import SpikeNoise
from repro.tomo import plan_counts, run_seismic_app
from repro.workloads import table1_platform, table1_rank_hosts


class TestScaleCost:
    def test_linear(self):
        c = scale_cost(LinearCost(0.5), 2.0)
        assert c(4) == pytest.approx(4.0)

    def test_affine(self):
        c = scale_cost(AffineCost(1.0, 3.0), 2.0)
        assert c(1) == pytest.approx(8.0)
        assert c(0) == 0.0  # zero_is_free preserved

    def test_zero(self):
        z = ZeroCost()
        assert scale_cost(z, 5.0) is z

    def test_factor_one_identity(self):
        c = LinearCost(0.5)
        assert scale_cost(c, 1.0) is c

    def test_tabulated(self):
        c = scale_cost(TabulatedCost([0.0, 1.0, 3.0]), 3.0)
        assert c(2) == pytest.approx(9.0)

    def test_piecewise(self):
        c = scale_cost(PiecewiseLinearCost([(0, 0), (10, 5)]), 2.0)
        assert c(10) == pytest.approx(10.0)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            scale_cost(LinearCost(1.0), 0.0)


class TestLoadMonitor:
    def test_forecast_default_one(self):
        assert LoadMonitor().forecast("unknown") == 1.0

    def test_observe_and_forecast(self):
        mon = LoadMonitor()
        for t in range(10):
            mon.observe("h", float(t), 1.4)
        assert mon.forecast("h") == pytest.approx(1.4)

    def test_rejects_nonpositive_load(self):
        with pytest.raises(ValueError):
            LoadMonitor().observe("h", 0.0, 0.0)

    def test_rejects_out_of_order(self):
        mon = LoadMonitor()
        mon.observe("h", 5.0, 1.0)
        with pytest.raises(ValueError, match="out-of-order"):
            mon.observe("h", 4.0, 1.0)

    def test_sample_platform_reads_noise(self):
        plat = table1_platform()
        plat.hosts["sekhmet"].noise = SpikeNoise("sekhmet", 0.0, 100.0, slowdown=2.0)
        mon = LoadMonitor()
        mon.sample_platform(plat, 10.0)
        assert mon.history["sekhmet"][-1].load == 2.0
        assert mon.history["caseb"][-1].load == 1.0

    def test_scaled_problem(self):
        prob = ScatterProblem(
            [
                Processor.linear("busy", 0.01, 1e-5),
                Processor.linear("root", 0.01, 0.0),
            ],
            100,
        )
        mon = LoadMonitor()
        for t in range(5):
            mon.observe("busy", float(t), 2.0)
        scaled = mon.scaled_problem(prob)
        assert float(scaled.processors[0].alpha) == pytest.approx(0.02)
        assert float(scaled.processors[1].alpha) == pytest.approx(0.01)
        # Communication untouched.
        assert scaled.processors[0].beta == prob.processors[0].beta


class TestPlanWithMonitor:
    def test_informed_plan_beats_stale_under_load(self):
        hosts = table1_rank_hosts()
        n = 50_000
        loaded = table1_platform()
        loaded.hosts["sekhmet"].noise = SpikeNoise("sekhmet", 0.0, 1e9, slowdown=2.0)

        stale_counts = plan_counts(loaded, hosts, n)  # ignores the load
        mon = LoadMonitor()
        for t in range(0, 30, 5):
            mon.sample_platform(loaded, float(t))
        informed_counts, result = plan_with_monitor(loaded, hosts, n, mon)

        stale = run_seismic_app(loaded, hosts, stale_counts)
        informed = run_seismic_app(loaded, hosts, informed_counts)
        assert informed.makespan < stale.makespan
        assert informed.imbalance < stale.imbalance
        # The loaded host's share shrinks.
        assert (
            dict(zip(hosts, informed_counts))["sekhmet"]
            < dict(zip(hosts, stale_counts))["sekhmet"]
        )

    def test_no_observations_matches_static_plan(self):
        plat = table1_platform()
        hosts = table1_rank_hosts()
        informed, _ = plan_with_monitor(plat, hosts, 10_000, LoadMonitor())
        static = plan_counts(plat, hosts, 10_000, algorithm="lp-heuristic")
        assert informed == static
