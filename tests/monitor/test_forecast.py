"""Tests for the NWS-style forecasters."""

import pytest

from repro.monitor import (
    AdaptiveBest,
    ExponentialSmoothing,
    LastValue,
    RunningMean,
    SlidingWindowMean,
    SlidingWindowMedian,
    default_portfolio,
)


class TestLastValue:
    def test_prior_before_data(self):
        assert LastValue().predict() == 1.0

    def test_tracks_last(self):
        f = LastValue()
        for v in (1.0, 2.0, 5.0):
            f.update(v)
        assert f.predict() == 5.0

    def test_reset(self):
        f = LastValue()
        f.update(3.0)
        f.reset()
        assert f.predict() == 1.0


class TestRunningMean:
    def test_mean(self):
        f = RunningMean()
        for v in (1.0, 2.0, 3.0):
            f.update(v)
        assert f.predict() == pytest.approx(2.0)

    def test_prior(self):
        assert RunningMean().predict() == 1.0


class TestSlidingWindows:
    def test_mean_window(self):
        f = SlidingWindowMean(window=2)
        for v in (10.0, 1.0, 3.0):
            f.update(v)
        assert f.predict() == pytest.approx(2.0)  # only last two

    def test_median_robust_to_spike(self):
        f = SlidingWindowMedian(window=5)
        for v in (1.0, 1.0, 100.0, 1.0, 1.0):
            f.update(v)
        assert f.predict() == 1.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowMean(window=0)


class TestExponentialSmoothing:
    def test_first_value_seeds_state(self):
        f = ExponentialSmoothing(alpha=0.5)
        f.update(4.0)
        assert f.predict() == 4.0

    def test_smoothing(self):
        f = ExponentialSmoothing(alpha=0.5)
        f.update(4.0)
        f.update(0.0)
        assert f.predict() == pytest.approx(2.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ExponentialSmoothing(alpha=0.0)
        with pytest.raises(ValueError):
            ExponentialSmoothing(alpha=1.5)


class TestAdaptiveBest:
    def test_constant_series_converges(self):
        f = AdaptiveBest()
        for _ in range(20):
            f.update(1.5)
        assert f.predict() == pytest.approx(1.5)

    def test_picks_last_value_for_trending_series(self):
        """On a monotone ramp, LAST beats long-memory forecasters."""
        f = AdaptiveBest()
        for i in range(50):
            f.update(1.0 + 0.1 * i)
        assert isinstance(f.best_member, LastValue)

    def test_picks_robust_member_for_spiky_series(self):
        """On a constant-with-outliers series the median-style members
        accumulate less error than LAST."""
        f = AdaptiveBest()
        series = []
        for i in range(60):
            series.append(10.0 if i % 7 == 3 else 1.0)
        for v in series:
            f.update(v)
        assert not isinstance(f.best_member, LastValue)
        assert f.predict() < 3.0

    def test_beats_worst_member(self):
        """The portfolio's accumulated error tracks its best member."""
        members = [LastValue(), RunningMean()]
        portfolio = AdaptiveBest(members)
        shadow_last, shadow_mean = LastValue(), RunningMean()
        err_port = err_last = err_mean = 0.0
        import math

        for i in range(100):
            v = 1.0 + math.sin(i / 3.0) * 0.5
            err_port += (portfolio.predict() - v) ** 2
            err_last += (shadow_last.predict() - v) ** 2
            err_mean += (shadow_mean.predict() - v) ** 2
            portfolio.update(v)
            shadow_last.update(v)
            shadow_mean.update(v)
        assert err_port <= max(err_last, err_mean)

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveBest([])

    def test_reset(self):
        f = AdaptiveBest()
        for v in (2.0, 2.0, 2.0):
            f.update(v)
        f.reset()
        assert f.predict() == 1.0

    def test_default_portfolio_diverse(self):
        kinds = {type(m) for m in default_portfolio()}
        assert len(kinds) >= 4
