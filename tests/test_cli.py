"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTable1Command:
    def test_prints_all_machines(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for machine in ("dinadan", "pellinore", "caseb", "sekhmet", "merlin", "seven", "leda"):
            assert machine in out


class TestPlanCommand:
    def test_default_table1(self, capsys):
        assert main(["plan", "--n", "5000"]) == 0
        out = capsys.readouterr().out
        assert "closed-form" in out
        assert "dinadan" in out

    def test_algorithm_choice(self, capsys):
        assert main(["plan", "--n", "2000", "--algorithm", "lp-heuristic"]) == 0
        assert "lp-heuristic" in capsys.readouterr().out

    def test_platform_file(self, tmp_path, capsys):
        from repro.workloads import random_star_platform
        import random

        plat = random_star_platform(random.Random(0), 4)
        path = tmp_path / "plat.json"
        plat.save(str(path))
        assert main(["plan", "--platform", str(path), "--n", "100"]) == 0
        assert "h0" in capsys.readouterr().out

    def test_platform_file_with_root(self, tmp_path, capsys):
        from repro.workloads import random_star_platform
        import random

        plat = random_star_platform(random.Random(0), 4)
        path = tmp_path / "plat.json"
        plat.save(str(path))
        assert main(["plan", "--platform", str(path), "--root", "h2", "--n", "50"]) == 0


class TestSimulateCommand:
    def test_uniform(self, capsys):
        assert main(["simulate", "--n", "2000", "--algorithm", "uniform"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "caseb" in out

    def test_balanced_ascending(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--n",
                    "2000",
                    "--order",
                    "bandwidth-asc",
                    "--algorithm",
                    "lp-heuristic",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.splitlines()[1].lstrip().startswith("merlin")


class TestFiguresCommand:
    def test_all_three_figures(self, capsys):
        assert main(["figures", "--n", "3000"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "Fig. 3" in out and "Fig. 4" in out
        assert "Imbalance" in out


class TestChaosCommand:
    def test_sweep_with_json_output(self, tmp_path, capsys):
        import json
        import random

        from repro.workloads import random_star_platform

        plat = random_star_platform(random.Random(0), 5)
        path = tmp_path / "plat.json"
        plat.save(str(path))
        out_json = tmp_path / "chaos.json"
        assert main([
            "chaos", "--platform", str(path), "--n", "800",
            "--rates", "0,0.5", "--seed", "1", "--json", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "degradation" in out
        assert "1.000x" in out  # the rate-0 row replays the baseline
        payload = json.loads(out_json.read_text())
        assert payload["baseline_makespan"] > 0
        assert [pt["rate"] for pt in payload["points"]] == [0.0, 0.5]

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="failure rate"):
            main(["chaos", "--n", "100", "--rates", "2.0"])


class TestTraceCommand:
    def test_smoke(self, capsys):
        assert main(["trace", "--n", "1500", "--algorithm", "uniform"]) == 0
        out = capsys.readouterr().out
        assert "Traced run" in out
        assert "events:" in out
        assert "span totals" in out
        assert "compute.begin" in out

    def test_exports_and_determinism(self, tmp_path, capsys):
        import json

        a_jsonl = tmp_path / "a.jsonl"
        b_jsonl = tmp_path / "b.jsonl"
        chrome = tmp_path / "trace.json"
        argv = ["trace", "--n", "1500", "--jsonl", str(a_jsonl), "--chrome", str(chrome)]
        assert main(argv) == 0
        assert main(["trace", "--n", "1500", "--jsonl", str(b_jsonl)]) == 0
        capsys.readouterr()
        # the seeded-determinism contract: byte-identical event exports
        assert a_jsonl.read_bytes() == b_jsonl.read_bytes()

        from repro.obs import validate_chrome_trace

        doc = json.loads(chrome.read_text(encoding="utf-8"))
        assert validate_chrome_trace(doc) > 0

    def test_metrics_flag(self, capsys):
        assert main(["trace", "--n", "800", "--metrics"]) == 0
        assert "metrics:" in capsys.readouterr().out


class TestParser:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_algorithm(self):
        with pytest.raises(SystemExit):
            main(["plan", "--algorithm", "nonsense"])


class TestRewriteCommand:
    SOURCE = (
        "#include <mpi.h>\n"
        "void run(float *a, float *b, int n) {\n"
        "    MPI_Scatter(a, n/16, MPI_FLOAT, b, n/16, MPI_FLOAT, 0, MPI_COMM_WORLD);\n"
        "}\n"
    )

    def test_static_rewrite_to_stdout(self, tmp_path, capsys):
        src = tmp_path / "app.c"
        src.write_text(self.SOURCE)
        assert main(["rewrite", str(src), "--n", "1600"]) == 0
        out = capsys.readouterr().out
        assert "MPI_Scatterv(a" in out
        assert "repro_counts_" in out

    def test_runtime_rewrite_to_file(self, tmp_path, capsys):
        src = tmp_path / "app.c"
        src.write_text(self.SOURCE)
        dst = tmp_path / "app_balanced.c"
        assert main(["rewrite", str(src), "--runtime", "--output", str(dst)]) == 0
        text = dst.read_text()
        assert "repro_compute_distribution" in text
        assert "MPI_Scatterv(a" in text


class TestSimulateSvg:
    def test_svg_outputs(self, tmp_path, capsys):
        svg = tmp_path / "fig.svg"
        gantt = tmp_path / "gantt.svg"
        assert (
            main(
                [
                    "simulate", "--n", "1000",
                    "--svg", str(svg), "--gantt", str(gantt),
                ]
            )
            == 0
        )
        import xml.etree.ElementTree as ET

        ET.parse(str(svg))
        ET.parse(str(gantt))


class TestSweepCommand:
    def test_heterogeneity(self, capsys):
        assert main(["sweep", "heterogeneity", "--p", "6", "--n", "5000"]) == 0
        out = capsys.readouterr().out
        assert "speed spread" in out and "gain" in out

    def test_comm_ratio(self, capsys):
        assert main(["sweep", "comm-ratio", "--p", "6", "--n", "5000"]) == 0
        assert "comm/comp" in capsys.readouterr().out

    def test_bad_dimension(self):
        with pytest.raises(SystemExit):
            main(["sweep", "latency"])
