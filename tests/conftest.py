"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import itertools
import os
import random
from typing import Iterator, Tuple

import pytest

from repro.core import Processor, ScatterProblem
from repro.lint import runtime as lint_runtime


def compositions(n: int, p: int) -> Iterator[Tuple[int, ...]]:
    """All ways to write ``n`` as an ordered sum of ``p`` non-negatives.

    Brute-force ground truth for the DP solvers; use only for tiny n, p.
    """
    if p == 1:
        yield (n,)
        return
    for first in range(n + 1):
        for rest in compositions(n - first, p - 1):
            yield (first,) + rest


def brute_force_optimum(problem: ScatterProblem) -> float:
    """Exhaustive-search optimal makespan (float evaluation)."""
    return min(problem.makespan(c) for c in compositions(problem.n, problem.p))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def lock_sanitizer():
    """A freshly installed lock sanitizer, removed (and any ambient
    env-flag activation restored with a clean slate) on teardown."""
    prior = lint_runtime.uninstall_lock_sanitizer()
    state = lint_runtime.install_lock_sanitizer()
    yield state
    lint_runtime.uninstall_lock_sanitizer()
    if prior is not None:
        lint_runtime.install_lock_sanitizer()


@pytest.fixture(autouse=True)
def _ambient_sanitizer_guard():
    """Under ``REPRO_LOCK_SANITIZER=1`` (the CI concurrency step), fail
    any test whose execution recorded a lock-discipline violation, and
    isolate tests from each other's recorded edges."""
    ambient = os.environ.get(lint_runtime.ENV_FLAG, "") == "1"
    if ambient and lint_runtime.sanitizer_active():
        lint_runtime.reset_sanitizer()
    yield
    if ambient and lint_runtime.sanitizer_active():
        try:
            lint_runtime.assert_sanitizer_clean()
        finally:
            lint_runtime.reset_sanitizer()


@pytest.fixture
def small_linear_problem() -> ScatterProblem:
    """A 4-processor linear instance with visible heterogeneity."""
    return ScatterProblem(
        [
            Processor.linear("fast", alpha=0.004, beta=1e-5),
            Processor.linear("mid", alpha=0.009, beta=2e-5),
            Processor.linear("slow", alpha=0.016, beta=5e-5),
            Processor.linear("root", alpha=0.009, beta=0.0),
        ],
        n=200,
    )


@pytest.fixture
def tiny_linear_problem() -> ScatterProblem:
    """Small enough for exhaustive search."""
    return ScatterProblem(
        [
            Processor.linear("a", alpha=0.3, beta=0.05),
            Processor.linear("b", alpha=0.7, beta=0.02),
            Processor.linear("root", alpha=0.5, beta=0.0),
        ],
        n=12,
    )
