"""End-to-end integration tests: the full Figs. 2-4 pipeline at reduced n.

These run the complete stack — Table 1 platform, distribution planning,
simulated MPI scatter, trace collection — and assert the paper's headline
findings hold at every scale:

1. the uniform distribution is hugely imbalanced (Fig. 2);
2. balancing roughly halves the duration (Fig. 3);
3. ascending-bandwidth ordering is strictly worse and has a bigger stair
   (Fig. 4);
4. the simulated timings agree exactly with the analytic model (Eq. 1-2).
"""

import pytest

from repro.core import solve_heuristic, uniform_counts
from repro.simgrid import JitterNoise, SpikeNoise
from repro.tomo import plan_counts, run_seismic_app
from repro.workloads import table1_platform, table1_problem, table1_rank_hosts

N = 40_000  # scaled-down 1999 catalog


@pytest.fixture(scope="module")
def platform():
    return table1_platform()


@pytest.fixture(scope="module")
def desc_hosts():
    return table1_rank_hosts("bandwidth-desc")


@pytest.fixture(scope="module")
def fig2(platform, desc_hosts):
    return run_seismic_app(platform, desc_hosts, uniform_counts(N, 16))


@pytest.fixture(scope="module")
def fig3(platform, desc_hosts):
    counts = plan_counts(platform, desc_hosts, N, algorithm="lp-heuristic")
    return run_seismic_app(platform, desc_hosts, counts)


@pytest.fixture(scope="module")
def fig4(platform):
    hosts = table1_rank_hosts("bandwidth-asc")
    counts = plan_counts(platform, hosts, N, algorithm="lp-heuristic")
    return run_seismic_app(platform, hosts, counts)


class TestFig2Uniform:
    def test_large_imbalance(self, fig2):
        assert fig2.imbalance > 0.5  # paper: 259 vs 853 s -> 70%

    def test_equal_shares(self, fig2):
        assert max(fig2.counts) - min(fig2.counts) <= 1

    def test_slowest_machine_finishes_last(self, fig2):
        worst = fig2.rank_hosts[fig2.finish_times.index(max(fig2.finish_times))]
        assert worst.startswith("seven")

    def test_matches_analytic_model(self, fig2, platform, desc_hosts):
        prob = platform.to_problem(N, desc_hosts[-1], order=desc_hosts[:-1])
        model = prob.finish_times(list(fig2.counts))
        for sim_t, model_t in zip(fig2.finish_times, model):
            assert sim_t == pytest.approx(model_t, rel=1e-9)


class TestFig3Balanced:
    def test_nearly_perfect_balance(self, fig3):
        assert fig3.imbalance < 0.005

    def test_halves_uniform_duration(self, fig2, fig3):
        assert fig2.makespan / fig3.makespan == pytest.approx(2.0, abs=0.3)

    def test_fast_cpus_get_more_data(self, fig3):
        by_host = dict(zip(fig3.rank_hosts, fig3.counts))
        assert by_host["merlin#5"] > by_host["caseb"] > by_host["pellinore"]
        assert by_host["seven#7"] < by_host["pellinore"]

    def test_counts_sum(self, fig3):
        assert sum(fig3.counts) == N


class TestFig4Ascending:
    def test_worse_than_descending(self, fig3, fig4):
        assert fig4.makespan > fig3.makespan

    def test_bigger_stair_area(self, fig3, fig4):
        stair3 = fig3.run.recorder.stair_area(fig3.run.trace_names)
        stair4 = fig4.run.recorder.stair_area(fig4.run.trace_names)
        assert stair4 > 2 * stair3

    def test_still_roughly_balanced(self, fig4):
        # Paper: ~10% spread in the measured run; the pure model stays tight.
        assert fig4.imbalance < 0.05


class TestNoiseReproducesMeasuredSpread:
    """With jitter + the sekhmet spike the deterministic model develops the
    single-digit-percent imbalance the paper measured."""

    def test_noisy_balanced_run(self, platform, desc_hosts):
        counts = plan_counts(platform, desc_hosts, N, algorithm="lp-heuristic")
        noisy = table1_platform()
        for host in noisy.hosts.values():
            host.noise = JitterNoise(seed=42, amplitude=0.08)
        noisy.hosts["sekhmet"].noise = SpikeNoise("sekhmet", 0.0, 100.0, slowdown=1.15)
        res = run_seismic_app(noisy, desc_hosts, counts)
        assert 0.005 < res.imbalance < 0.20
        # Still far better than uniform.
        uni = run_seismic_app(noisy, desc_hosts, uniform_counts(N, 16))
        assert res.makespan < 0.7 * uni.makespan


class TestHeuristicOptimality:
    def test_heuristic_vs_dp_small_n(self, platform, desc_hosts):
        """At a DP-tractable size, the heuristic must be within the Eq. 4
        additive gap of the exact optimum."""
        from repro.core import guarantee_gap, solve_dp_optimized

        n = 600
        prob = platform.to_problem(n, desc_hosts[-1], order=desc_hosts[:-1])
        h = solve_heuristic(prob)
        dp = solve_dp_optimized(prob)
        assert dp.makespan <= h.makespan + 1e-12
        assert h.makespan - dp.makespan <= float(guarantee_gap(prob)) + 1e-9


class TestGatherRoundTrip:
    def test_real_tracing_end_to_end(self, platform, desc_hosts):
        """Scatter real rays, trace them on each rank, gather results."""
        import numpy as np

        from repro.tomo import RayTracer, generate_catalog

        n = 160
        cat = generate_catalog(n, seed=123)
        tracer = RayTracer(n_p=128, n_r=512, n_delta=128)
        counts = plan_counts(platform, desc_hosts, n, algorithm="lp-heuristic")
        res = run_seismic_app(
            platform, desc_hosts, counts, catalog=cat, tracer=tracer, gather=True
        )
        parts = [np.asarray(x) for x, c in zip(res.gathered, counts) if c > 0]
        got = np.concatenate(parts)
        expected = tracer.trace_catalog(cat)
        np.testing.assert_allclose(np.sort(got), np.sort(expected))
