"""Tests for the exact rational simplex solver."""

import random
from fractions import Fraction

import pytest

from repro.lp import (
    LinearProgram,
    SimplexError,
    solve_simplex,
    solve_with_scipy,
)

F = Fraction


class TestBasics:
    def test_simple_2d(self):
        # max x+y s.t. x+2y<=4, 3x+y<=6  == min -(x+y)
        lp = LinearProgram(
            c=[F(-1), F(-1)],
            a_ub=[[F(1), F(2)], [F(3), F(1)]],
            b_ub=[F(4), F(6)],
        )
        res = solve_simplex(lp)
        assert res.objective == F(-14, 5)
        assert res.x == [F(8, 5), F(6, 5)]

    def test_equality_constraint(self):
        # min x + 2y s.t. x + y == 3
        lp = LinearProgram(c=[F(1), F(2)], a_eq=[[F(1), F(1)]], b_eq=[F(3)])
        res = solve_simplex(lp)
        assert res.x == [F(3), F(0)]
        assert res.objective == 3

    def test_degenerate_vertex(self):
        # Three constraints meeting at one point (degeneracy; Bland must
        # terminate).
        lp = LinearProgram(
            c=[F(-1), F(-1)],
            a_ub=[[F(1), F(0)], [F(0), F(1)], [F(1), F(1)]],
            b_ub=[F(1), F(1), F(2)],
        )
        res = solve_simplex(lp)
        assert res.objective == -2

    def test_zero_objective(self):
        lp = LinearProgram(c=[F(0)], a_ub=[[F(1)]], b_ub=[F(5)])
        res = solve_simplex(lp)
        assert res.objective == 0

    def test_no_constraints_bounded(self):
        lp = LinearProgram(c=[F(1), F(2)])
        res = solve_simplex(lp)
        assert res.x == [F(0), F(0)]

    def test_no_constraints_unbounded(self):
        lp = LinearProgram(c=[F(-1)])
        with pytest.raises(SimplexError, match="unbounded"):
            solve_simplex(lp)

    def test_negative_rhs_handled(self):
        # x >= 2 written as -x <= -2; min x -> 2.
        lp = LinearProgram(c=[F(1)], a_ub=[[F(-1)]], b_ub=[F(-2)])
        res = solve_simplex(lp)
        assert res.x == [F(2)]


class TestInfeasibleUnbounded:
    def test_infeasible(self):
        # x <= 1 and x >= 2
        lp = LinearProgram(
            c=[F(1)], a_ub=[[F(1)], [F(-1)]], b_ub=[F(1), F(-2)]
        )
        with pytest.raises(SimplexError, match="infeasible"):
            solve_simplex(lp)

    def test_unbounded_direction(self):
        # min -x s.t. y <= 1 (x free to grow)
        lp = LinearProgram(c=[F(-1), F(0)], a_ub=[[F(0), F(1)]], b_ub=[F(1)])
        with pytest.raises(SimplexError, match="unbounded"):
            solve_simplex(lp)

    def test_infeasible_equalities(self):
        lp = LinearProgram(
            c=[F(1)], a_eq=[[F(1)], [F(1)]], b_eq=[F(1), F(2)]
        )
        with pytest.raises(SimplexError, match="infeasible"):
            solve_simplex(lp)

    def test_redundant_equalities_ok(self):
        lp = LinearProgram(
            c=[F(1), F(1)],
            a_eq=[[F(1), F(1)], [F(2), F(2)]],
            b_eq=[F(3), F(6)],
        )
        res = solve_simplex(lp)
        assert res.objective == 3


class TestValidation:
    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            LinearProgram(c=[F(1)], a_ub=[[F(1), F(2)]], b_ub=[F(1)])

    def test_rhs_length_mismatch(self):
        with pytest.raises(ValueError):
            LinearProgram(c=[F(1)], a_ub=[[F(1)]], b_ub=[F(1), F(2)])

    def test_coefficients_coerced_to_fractions(self):
        lp = LinearProgram(c=[0.5], a_ub=[[1]], b_ub=[2])
        assert isinstance(lp.c[0], Fraction)


class TestAgainstScipy:
    """Fuzz the exact solver against HiGHS on random feasible LPs."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_bounded_lps(self, seed):
        rng = random.Random(seed)
        nvars = rng.randint(1, 5)
        nub = rng.randint(1, 5)
        # Keep the region bounded: every variable capped.
        a_ub = [[F(rng.randint(0, 4)) for _ in range(nvars)] for _ in range(nub)]
        b_ub = [F(rng.randint(1, 20)) for _ in range(nub)]
        for i in range(nvars):
            row = [F(0)] * nvars
            row[i] = F(1)
            a_ub.append(row)
            b_ub.append(F(rng.randint(1, 10)))
        c = [F(rng.randint(-5, 5)) for _ in range(nvars)]
        lp = LinearProgram(c=c, a_ub=a_ub, b_ub=b_ub)

        exact = solve_simplex(lp)
        approx = solve_with_scipy(lp)
        obj_scipy = sum(float(ci) * xi for ci, xi in zip(c, approx))
        assert float(exact.objective) == pytest.approx(obj_scipy, abs=1e-7)

    def test_exactness_no_float_error(self):
        # A problem whose solution is not float-representable.
        lp = LinearProgram(
            c=[F(-1)],
            a_ub=[[F(3)]],
            b_ub=[F(1)],
        )
        res = solve_simplex(lp)
        assert res.x == [F(1, 3)]  # exactly one third


class TestAntiCycling:
    def test_beale_example(self):
        """Beale's classic cycling example: Dantzig's rule cycles forever;
        Bland's rule must terminate at the optimum (-1/20)."""
        lp = LinearProgram(
            c=[F(-3, 4), F(150), F(-1, 50), F(6)],
            a_ub=[
                [F(1, 4), F(-60), F(-1, 25), F(9)],
                [F(1, 2), F(-90), F(-1, 50), F(3)],
                [F(0), F(0), F(1), F(0)],
            ],
            b_ub=[F(0), F(0), F(1)],
        )
        res = solve_simplex(lp)
        assert res.objective == F(-1, 20)

    def test_highly_degenerate_transport(self):
        """Many redundant tight constraints at the optimum."""
        lp = LinearProgram(
            c=[F(-1), F(-1), F(-1)],
            a_ub=[
                [F(1), F(0), F(0)],
                [F(0), F(1), F(0)],
                [F(0), F(0), F(1)],
                [F(1), F(1), F(0)],
                [F(0), F(1), F(1)],
                [F(1), F(0), F(1)],
                [F(1), F(1), F(1)],
            ],
            b_ub=[F(1)] * 3 + [F(2)] * 3 + [F(3)],
        )
        res = solve_simplex(lp)
        assert res.objective == -3

    def test_iteration_limit(self):
        lp = LinearProgram(c=[F(-1)], a_ub=[[F(1)]], b_ub=[F(10)])
        with pytest.raises(SimplexError, match="iterations"):
            solve_simplex(lp, max_iterations=0)
