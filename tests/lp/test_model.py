"""Tests for the scatter LP builder (system (3))."""

from fractions import Fraction

import pytest

from repro.core import Processor, ScatterProblem
from repro.lp import build_scatter_lp, solve_simplex
from repro.lp.model import affine_coefficients

F = Fraction


def affine_problem():
    return ScatterProblem(
        [
            Processor.affine("a", 2.0, 0.5, comp_intercept=1.0, comm_intercept=0.25),
            Processor.affine("b", 3.0, 0.75, comp_intercept=0.5),
            Processor.linear("root", 1.0, 0.0),
        ],
        10,
    )


class TestAffineCoefficients:
    def test_extraction(self):
        alphas, a_icpt, betas, b_icpt = affine_coefficients(affine_problem())
        assert alphas == [F(2), F(3), F(1)]
        assert a_icpt == [F(1), F(1, 2), F(0)]
        assert betas == [F(1, 2), F(3, 4), F(0)]
        assert b_icpt == [F(1, 4), F(0), F(0)]

    def test_rejects_tabulated(self):
        from repro.core import TabulatedCost, ZeroCost

        prob = ScatterProblem(
            [Processor("t", ZeroCost(), TabulatedCost([0, 1]))], 1
        )
        with pytest.raises(ValueError, match="affine"):
            affine_coefficients(prob)


class TestBuildLp:
    def test_dimensions(self):
        lp = build_scatter_lp(affine_problem())
        assert lp.num_vars == 4  # n1, n2, n3, T
        assert len(lp.a_eq) == 1
        assert len(lp.a_ub) == 3

    def test_objective_is_T(self):
        lp = build_scatter_lp(affine_problem())
        assert lp.c == [F(0), F(0), F(0), F(1)]

    def test_conservation_row(self):
        lp = build_scatter_lp(affine_problem())
        assert lp.a_eq[0] == [F(1), F(1), F(1), F(0)]
        assert lp.b_eq[0] == 10

    def test_constraint_rows_encode_eq1(self):
        lp = build_scatter_lp(affine_problem())
        # Row i: sum_{j<=i} beta_j n_j + alpha_i n_i - T <= -(sum b_j + a_i)
        # Row 0: (beta_0 + alpha_0) n_0 - T <= -(b_0 + a_0)
        assert lp.a_ub[0] == [F(1, 2) + 2, F(0), F(0), F(-1)]
        assert lp.b_ub[0] == -(F(1, 4) + 1)
        # Row 1: beta_0 n_0 + (beta_1 + alpha_1) n_1 - T
        assert lp.a_ub[1] == [F(1, 2), F(3, 4) + 3, F(0), F(-1)]
        assert lp.b_ub[1] == -(F(1, 4) + F(0) + F(1, 2))

    def test_solution_satisfies_eq1(self):
        prob = affine_problem()
        lp = build_scatter_lp(prob)
        res = solve_simplex(lp)
        shares, t = res.x[:3], res.x[3]
        assert sum(shares) == 10
        # Recompute every constraint by hand at the optimum.
        alphas, a_icpt, betas, b_icpt = affine_coefficients(prob)
        elapsed = F(0)
        for i in range(3):
            elapsed += betas[i] * shares[i] + b_icpt[i]
            assert elapsed + alphas[i] * shares[i] + a_icpt[i] <= t

    def test_binding_at_optimum(self):
        """At the optimum at least one finish-time constraint is tight."""
        prob = affine_problem()
        lp = build_scatter_lp(prob)
        res = solve_simplex(lp)
        shares, t = res.x[:3], res.x[3]
        alphas, a_icpt, betas, b_icpt = affine_coefficients(prob)
        finishes = []
        elapsed = F(0)
        for i in range(3):
            elapsed += betas[i] * shares[i] + b_icpt[i]
            finishes.append(elapsed + alphas[i] * shares[i] + a_icpt[i])
        assert max(finishes) == t
