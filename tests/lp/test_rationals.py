"""Tests for the rational linear-algebra helpers."""

from fractions import Fraction

import pytest

from repro.lp import dot, fmat, format_fraction, fvec, is_zero_vector

F = Fraction


class TestFvec:
    def test_conversion(self):
        assert fvec([1, 0.5, F(1, 3)]) == [F(1), F(1, 2), F(1, 3)]

    def test_empty(self):
        assert fvec([]) == []


class TestFmat:
    def test_conversion(self):
        m = fmat([[1, 2], [0.5, 0.25]])
        assert m == [[F(1), F(2)], [F(1, 2), F(1, 4)]]

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            fmat([[1, 2], [3]])

    def test_empty(self):
        assert fmat([]) == []


class TestDot:
    def test_exact(self):
        assert dot([F(1, 3), F(1, 3), F(1, 3)], [F(1), F(1), F(1)]) == 1

    def test_skips_zeros(self):
        assert dot([F(0), F(2)], [F(5), F(3)]) == 6

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dot([F(1)], [F(1), F(2)])


class TestUtilities:
    def test_is_zero_vector(self):
        assert is_zero_vector([F(0), F(0)])
        assert not is_zero_vector([F(0), F(1)])
        assert is_zero_vector([])

    def test_format_integer(self):
        assert format_fraction(F(7)) == "7"

    def test_format_short_fraction(self):
        assert format_fraction(F(1, 3)) == "1/3"

    def test_format_long_fraction_decimal(self):
        x = F(123456789, 987654321001)
        out = format_fraction(x)
        assert "/" not in out
        assert float(out) == pytest.approx(float(x), rel=1e-3)
