"""Tests for the gather duality (core/gather.py)."""

import itertools
import random

import pytest

from repro.core import (
    Processor,
    ScatterProblem,
    fifo_order,
    gather_finish_times,
    gather_makespan,
    solve_gather,
)
from repro.workloads import random_linear_problem


def problem3(n=100):
    return ScatterProblem(
        [
            Processor.linear("a", 0.01, 1e-3),
            Processor.linear("b", 0.02, 2e-3),
            Processor.linear("root", 0.015, 0.0),
        ],
        n,
    )


class TestGatherEvaluation:
    def test_hand_computed_schedule(self):
        prob = problem3(10)
        # counts (4, 3, 3): root computes 3 items first (0.045), the port
        # opens then; a (ready 0.04) starts at 0.045, comm 0.004; b (ready
        # 0.06) starts at its own readiness.
        times = gather_finish_times(prob, (4, 3, 3), order=[0, 1])
        assert times[0] == pytest.approx(0.049)
        assert times[1] == pytest.approx(0.066)
        assert times[2] == pytest.approx(0.045)  # root computes only

    def test_port_contention(self):
        prob = ScatterProblem(
            [
                Processor.linear("a", 0.001, 1.0),  # ready fast, long transfer
                Processor.linear("b", 0.001, 1.0),
                Processor.linear("root", 0.001, 0.0),
            ],
            4,
        )
        times = gather_finish_times(prob, (2, 2, 0), order=[0, 1])
        assert times[0] == pytest.approx(0.002 + 2.0)
        assert times[1] == pytest.approx(0.002 + 4.0)  # waits for the port

    def test_zero_count_skips_port(self):
        prob = problem3(10)
        times = gather_finish_times(prob, (0, 10, 0), order=[0, 1])
        assert times[0] == 0.0
        assert times[2] == 0.0

    def test_order_validation(self):
        prob = problem3(10)
        with pytest.raises(ValueError, match="permute"):
            gather_finish_times(prob, (5, 5, 0), order=[0, 0])

    def test_fifo_order_by_readiness(self):
        prob = ScatterProblem(
            [
                Processor.linear("slowcpu", 1.0, 1e-3),
                Processor.linear("fastcpu", 0.1, 1e-3),
                Processor.linear("root", 0.5, 0.0),
            ],
            10,
        )
        assert fifo_order(prob, (5, 5, 0)) == [1, 0]


class TestDuality:
    def test_gather_equals_scatter_optimum_exact(self, rng):
        """With the exact scatter optimum, the mirrored gather achieves it
        exactly: greedy-in-reversed-order can't exceed the mirror (T) and
        no gather schedule can beat the gather optimum, which equals T."""
        for _ in range(10):
            prob = random_linear_problem(rng, rng.randint(2, 5), rng.randint(10, 80))
            plan = solve_gather(prob, algorithm="dp-optimized")
            assert plan.makespan == pytest.approx(plan.scatter.makespan, rel=1e-12)

    def test_gather_never_exceeds_heuristic_scatter(self, rng):
        """With heuristic counts the gather lands in [T_opt, T_heuristic]."""
        for _ in range(10):
            prob = random_linear_problem(rng, rng.randint(2, 7), rng.randint(10, 300))
            plan = solve_gather(prob)
            assert plan.makespan <= plan.scatter.makespan + 1e-12

    def test_reversed_order_near_optimal_among_orders(self, rng):
        """The flipped scatter order is within the rounding/ordering gap of
        the best service order for the same counts (exhaustive, small p).
        (Exact optimality needs counts jointly optimized per order; the
        plan keeps Theorem 3's order, so integer effects leave a tiny gap.)
        """
        from repro.core import guarantee_gap

        for _ in range(5):
            prob = random_linear_problem(rng, 4, 60)
            plan = solve_gather(prob, algorithm="dp-optimized")
            best = min(
                gather_makespan(plan.problem, plan.counts, list(perm))
                for perm in itertools.permutations(range(plan.problem.p - 1))
            )
            assert plan.makespan >= best - 1e-12  # best includes plan's order
            assert plan.makespan <= best + float(guarantee_gap(prob)) + 1e-12

    def test_gather_never_beats_scatter_optimum_over_orders(self, rng):
        """Any gather schedule reversed is a feasible scatter (with the
        reversed service order), so gather can't beat the scatter optimum
        taken over all orders."""
        from repro.core import solve_dp_optimized

        for _ in range(6):
            prob = random_linear_problem(rng, 3, 40)
            scatter_best_over_orders = min(
                solve_dp_optimized(prob.with_order(perm + (prob.p - 1,))).makespan
                for perm in itertools.permutations(range(prob.p - 1))
            )
            for counts in (prob.uniform_distribution(),
                           solve_dp_optimized(prob).counts):
                for perm in itertools.permutations(range(prob.p - 1)):
                    g = gather_makespan(prob, counts, list(perm))
                    assert g >= scatter_best_over_orders - 1e-9

    def test_exact_mirror_identity(self, rng):
        """gather(counts, σ) == scatter-Eq.1(counts, reverse(σ)) for *any*
        counts and order — the sharpest form of the duality."""
        for _ in range(10):
            prob = random_linear_problem(rng, rng.randint(2, 5), rng.randint(5, 80))
            p = prob.p
            perm = list(range(p - 1))
            rng.shuffle(perm)
            counts = list(prob.uniform_distribution())
            rng.shuffle(counts)
            g = gather_makespan(prob, counts, perm)
            # Scatter with processors served in reverse(perm): reorder the
            # problem and the counts accordingly (root stays last).
            rev = list(reversed(perm)) + [p - 1]
            mirrored = prob.with_order(rev)
            mirrored_counts = [counts[i] for i in rev]
            s = mirrored.makespan(mirrored_counts)
            assert g == pytest.approx(s, rel=1e-12)

    def test_plan_fields(self):
        prob = problem3(50)
        plan = solve_gather(prob)
        assert sum(plan.counts) == 50
        assert sorted(plan.order) == [0, 1]
        assert len(plan.finish_times) == 3

    def test_mirrored_theorem3(self):
        """Scatter serves the best-connected first; the mirrored gather
        serves it last."""
        prob = ScatterProblem(
            [
                Processor.linear("slowlink", 0.01, 5e-3),
                Processor.linear("fastlink", 0.01, 1e-3),
                Processor.linear("root", 0.01, 0.0),
            ],
            100,
        )
        plan = solve_gather(prob)
        # After the bandwidth-desc policy, the solved problem's processor 0
        # is fastlink; the reversed service order starts with index 1.
        assert plan.problem.names[0] == "fastlink"
        assert plan.order[0] == 1  # slowlink drains the port first
