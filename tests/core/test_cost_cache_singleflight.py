"""Single-flight semantics of the cost-table cache (thundering herd fix).

Before the fix, ``CostTableCache.table`` computed misses outside the
lock, so K concurrent requesters of the same uncached function each ran
the O(n) tabulation.  These tests pin the repaired contract: exactly one
caller builds, the rest wait on the per-key event and then count as
hits-after-wait (never as misses), and a failed build wakes the waiters
so one of them retries rather than deadlocking.
"""

import threading

import numpy as np
import pytest

from repro.core.costs import CostFunction, CostTableCache, LinearCost
from repro.core.shared_cache import SharedCostTableCache


class CountingCost(CostFunction):
    """A value-keyed linear cost that counts (and can stall) tabulations.

    ``many`` blocks on ``gate`` when one is supplied, so a test can hold
    every stampeding thread at the miss decision before letting the
    single builder proceed.
    """

    is_increasing = True

    def __init__(self, rate=0.5, gate=None, fail_first=False):
        self._r = rate
        self.gate = gate
        self.fail_first = fail_first
        self.builds = 0
        self._lock = threading.Lock()

    def __call__(self, x):
        return self._r * float(x)

    def many(self, xs):
        with self._lock:
            self.builds += 1
            first = self.builds == 1
        if self.gate is not None:
            self.gate.wait(timeout=30)
        if self.fail_first and first:
            raise RuntimeError("injected tabulation failure")
        return self._r * np.asarray(xs, dtype=float)


def _stampede(cache, fn, n, k):
    """K threads request the same (fn, n) as simultaneously as possible."""
    barrier = threading.Barrier(k)
    results = [None] * k
    errors = []

    def worker(i):
        try:
            barrier.wait(timeout=30)
            results[i] = cache.table(fn, n)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(k)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads), "stampede deadlocked"
    return results, errors


class TestSingleFlight:
    def test_k16_stampede_builds_exactly_once(self):
        cache = CostTableCache()
        fn = CountingCost(0.25)
        results, errors = _stampede(cache, fn, 5_000, k=16)
        assert errors == []
        assert fn.builds == 1, "thundering herd: table built more than once"
        expected = 0.25 * np.arange(5_001)
        for r in results:
            np.testing.assert_array_equal(r, expected)

    def test_waiters_count_as_hits_not_misses(self):
        cache = CostTableCache()
        fn = CountingCost(0.5)
        _stampede(cache, fn, 2_000, k=16)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 15
        # waits may be < 15 (threads arriving after the commit hit
        # directly) but every wait must be accounted a hit afterwards.
        assert stats["waits"] <= 15

    def test_waiter_needing_larger_n_becomes_next_builder(self):
        cache = CostTableCache()
        gate = threading.Event()
        fn = CountingCost(0.5, gate=gate)
        small_started = threading.Event()

        def small():
            small_started.set()
            cache.table(fn, 100)

        t_small = threading.Thread(target=small)
        t_small.start()
        small_started.wait(timeout=10)
        # Wait until the small build is registered in flight, then ask
        # for a larger table: the waiter must rebuild after waking, not
        # return a 101-entry prefix as if it covered n=500.
        for _ in range(1_000):
            if fn.builds == 1:
                break
        result = {}

        def large():
            result["t"] = cache.table(fn, 500)

        t_large = threading.Thread(target=large)
        t_large.start()
        gate.set()
        t_small.join(timeout=30)
        t_large.join(timeout=30)
        assert result["t"].shape == (501,)
        np.testing.assert_array_equal(result["t"], 0.5 * np.arange(501))
        assert fn.builds == 2

    def test_failed_build_wakes_waiters_and_one_retries(self):
        cache = CostTableCache()
        fn = CountingCost(0.5, fail_first=True)
        barrier = threading.Barrier(8)
        outcomes = []
        lock = threading.Lock()

        def worker():
            barrier.wait(timeout=30)
            try:
                t = cache.table(fn, 1_000)
                with lock:
                    outcomes.append(("ok", t.shape[0]))
            except RuntimeError:
                with lock:
                    outcomes.append(("err", None))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "failure deadlocked"
        # The injected failure surfaces on exactly the thread that built
        # first; everyone else eventually gets a real table.
        assert outcomes.count(("err", None)) == 1
        assert outcomes.count(("ok", 1_001)) == 7

    def test_sequential_behavior_unchanged(self):
        cache = CostTableCache(maxsize=2)
        a, b, c = LinearCost(0.1), LinearCost(0.2), LinearCost(0.3)
        cache.table(a, 10)
        cache.table(a, 10)
        cache.table(b, 10)
        cache.table(c, 10)  # evicts a (maxsize=2)
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 3, "waits": 0, "entries": 2}

    def test_shared_cache_stampede_single_build_single_segment(self):
        cache = SharedCostTableCache(namespace="rsfsf1")
        try:
            fn = CountingCost(0.5)
            results, errors = _stampede(cache, fn, 3_000, k=16)
            assert errors == []
            assert fn.builds == 1
            for r in results:
                np.testing.assert_array_equal(r, 0.5 * np.arange(3_001))
            # CountingCost has no stable key, so nothing was published —
            # the point is the inherited single-flight still applies.
            assert cache.shared_stats()["created"] == 0
            lin = LinearCost(0.5)
            cache.table(lin, 3_000)
            assert cache.shared_stats()["created"] == 1
        finally:
            cache.unlink_all()
