"""Tests for the §4 closed form (Theorems 1 and 2)."""

from fractions import Fraction

import pytest

from repro.core import (
    Processor,
    ScatterProblem,
    chain_rate,
    chain_rate_sum_form,
    simultaneous_endings_mask,
    solve_closed_form,
    solve_dp_optimized,
    solve_rational,
)
from repro.core.costs import AffineCost
from repro.workloads import random_linear_problem


def linear_problem(specs, n):
    procs = [Processor.linear(f"P{i}", a, b) for i, (a, b) in enumerate(specs)]
    return ScatterProblem(procs, n)


class TestChainRate:
    def test_single_processor(self):
        prob = linear_problem([(2.0, 0.5)], 1)
        assert chain_rate(prob.processors) == Fraction(5, 2)

    def test_recurrence_matches_sum_form(self, rng):
        for _ in range(20):
            prob = random_linear_problem(rng, rng.randint(1, 8), 10)
            d1 = chain_rate(prob.processors)
            d2 = chain_rate_sum_form(prob.processors)
            assert d1 == d2  # both exact: must be *identical*

    def test_two_identical_processors_halve_rate_without_comm(self):
        # With beta=0, two alpha=1 processors behave like rate 1/2.
        prob = linear_problem([(1.0, 0.0), (1.0, 0.0)], 1)
        assert chain_rate(prob.processors) == Fraction(1, 2)

    def test_rejects_non_linear(self):
        prob = ScatterProblem(
            [Processor("a", AffineCost(0.1, 0.0), AffineCost(1.0, 2.0))], 5
        )
        with pytest.raises(ValueError, match="linear"):
            chain_rate(prob.processors)


class TestTheorem1:
    def test_duration_formula(self, rng):
        """t = n * D and the shares of Eq. 8 end simultaneously."""
        for _ in range(10):
            prob = random_linear_problem(rng, rng.randint(2, 6), rng.randint(10, 500))
            rat = solve_rational(prob)
            if not all(rat.active):
                continue  # Theorem 1 needs everyone active
            assert rat.duration == prob.n * chain_rate(prob.processors)

    def test_simultaneous_endings(self, rng):
        """All active processors end exactly at t (rational arithmetic)."""
        for _ in range(10):
            prob = random_linear_problem(rng, rng.randint(2, 6), rng.randint(10, 200))
            rat = solve_rational(prob)
            # Evaluate Eq. 1 with rational shares.
            elapsed = Fraction(0)
            for proc, share, active in zip(prob.processors, rat.shares, rat.active):
                elapsed += proc.beta * share
                if active:
                    assert elapsed + proc.alpha * share == rat.duration

    def test_shares_sum_to_n(self, rng):
        for _ in range(10):
            prob = random_linear_problem(rng, rng.randint(2, 7), rng.randint(1, 300))
            rat = solve_rational(prob)
            assert sum(rat.shares) == prob.n


class TestTheorem2:
    def test_all_active_when_links_fast(self):
        prob = linear_problem([(1.0, 0.001), (2.0, 0.001), (1.5, 0.0)], 10)
        assert simultaneous_endings_mask(prob.processors) == [True, True, True]

    def test_bad_link_excluded(self):
        # beta so large that serving P0 delays the rest more than it helps.
        prob = linear_problem([(0.1, 100.0), (1.0, 0.0)], 10)
        mask = simultaneous_endings_mask(prob.processors)
        assert mask == [False, True]
        rat = solve_rational(prob)
        assert rat.shares[0] == 0
        assert rat.shares[1] == prob.n

    def test_root_always_active(self, rng):
        for _ in range(10):
            prob = random_linear_problem(rng, rng.randint(1, 6), 10)
            assert simultaneous_endings_mask(prob.processors)[-1]

    def test_threshold_condition_exact(self):
        # Two processors: P1 active iff beta_1 <= D(P2) = alpha_2 + beta_2.
        at_threshold = linear_problem([(1.0, 3.0), (2.0, 1.0)], 10)
        assert simultaneous_endings_mask(at_threshold.processors)[0]  # 3.0 <= 3.0
        above = linear_problem([(1.0, 3.0 + 1e-9), (2.0, 1.0)], 10)
        assert not simultaneous_endings_mask(above.processors)[0]

    def test_excluding_is_optimal(self):
        """The rational optimum with exclusion beats any forced inclusion."""
        prob = linear_problem([(0.1, 50.0), (1.0, 0.0)], 20)
        rat = solve_rational(prob)
        # Forcing one item onto the awful processor must be worse.
        forced = prob.makespan([1, 19])
        assert float(rat.duration) < forced


class TestClosedFormInteger:
    def test_matches_dp_up_to_guarantee(self, rng):
        from repro.core import guarantee_gap

        for _ in range(10):
            prob = random_linear_problem(rng, rng.randint(2, 5), rng.randint(5, 60))
            cf = solve_closed_form(prob)
            dp = solve_dp_optimized(prob)
            gap = float(guarantee_gap(prob))
            assert dp.makespan <= cf.makespan + 1e-12
            assert cf.makespan <= dp.makespan + gap + 1e-12

    def test_counts_valid_and_close_to_rational(self, small_linear_problem):
        cf = solve_closed_form(small_linear_problem)
        rat = cf.info["rational_shares"]
        assert sum(cf.counts) == small_linear_problem.n
        for c, s in zip(cf.counts, rat):
            assert abs(Fraction(c) - s) < 1

    def test_exact_makespan_populated(self, small_linear_problem):
        cf = solve_closed_form(small_linear_problem)
        assert cf.makespan_exact is not None
        assert float(cf.makespan_exact) == pytest.approx(cf.makespan)

    def test_rejects_affine(self):
        prob = ScatterProblem(
            [
                Processor.affine("a", 1.0, 0.1, comp_intercept=0.5),
                Processor.linear("root", 1.0, 0.0),
            ],
            10,
        )
        with pytest.raises(ValueError, match="linear"):
            solve_closed_form(prob)

    def test_n_zero(self, tiny_linear_problem):
        cf = solve_closed_form(tiny_linear_problem.with_n(0))
        assert cf.counts == (0, 0, 0)
        assert cf.makespan == 0.0
