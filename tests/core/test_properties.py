"""Property-based tests (hypothesis) on the core invariants."""

from fractions import Fraction

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    LinearCost,
    Processor,
    ScatterProblem,
    chain_rate,
    chain_rate_sum_form,
    guarantee_gap,
    round_largest_remainder,
    round_paper,
    solve_closed_form,
    solve_dp_basic,
    solve_dp_optimized,
    solve_heuristic,
    solve_rational,
    uniform_counts,
)

# -- strategies -------------------------------------------------------------

rates = st.fractions(min_value=Fraction(1, 1000), max_value=Fraction(10))
comm_rates = st.fractions(min_value=Fraction(0), max_value=Fraction(2))


@st.composite
def linear_problems(draw, max_p=5, max_n=40):
    p = draw(st.integers(min_value=1, max_value=max_p))
    n = draw(st.integers(min_value=0, max_value=max_n))
    procs = []
    for i in range(p):
        alpha = draw(rates)
        beta = Fraction(0) if i == p - 1 else draw(comm_rates)
        procs.append(Processor.linear(f"P{i}", alpha, beta))
    return ScatterProblem(procs, n)


@st.composite
def rational_share_vectors(draw, max_p=7, max_n=60):
    p = draw(st.integers(min_value=1, max_value=max_p))
    n = draw(st.integers(min_value=0, max_value=max_n))
    weights = [draw(st.integers(min_value=1, max_value=50)) for _ in range(p)]
    total = sum(weights)
    shares = [Fraction(w * n, total) for w in weights]
    shares[-1] += n - sum(shares)
    assume(shares[-1] >= 0)
    return shares, n


# -- distribution evaluation ---------------------------------------------------


@given(linear_problems())
@settings(max_examples=60, deadline=None)
def test_uniform_distribution_is_valid(prob):
    counts = prob.uniform_distribution()
    assert sum(counts) == prob.n
    assert max(counts) - min(counts) <= 1


@given(linear_problems(), st.integers(min_value=0, max_value=40))
@settings(max_examples=60, deadline=None)
def test_makespan_monotone_in_n(prob, extra):
    """Adding items can never shrink the optimal makespan."""
    a = solve_dp_optimized(prob).makespan
    b = solve_dp_optimized(prob.with_n(prob.n + extra)).makespan
    assert b >= a - 1e-12


@given(linear_problems())
@settings(max_examples=50, deadline=None)
def test_finish_times_exact_matches_float(prob):
    counts = prob.uniform_distribution()
    exact = prob.finish_times_exact(counts)
    floats = prob.finish_times(counts)
    for e, f in zip(exact, floats):
        assert float(e) == pytest.approx(f, rel=1e-9, abs=1e-12)


# -- solver cross-validation ----------------------------------------------------


@given(linear_problems(max_p=4, max_n=25))
@settings(max_examples=40, deadline=None)
def test_dp_variants_agree(prob):
    a = solve_dp_basic(prob).makespan
    b = solve_dp_optimized(prob).makespan
    assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


@given(linear_problems(max_p=4, max_n=25))
@settings(max_examples=40, deadline=None)
def test_heuristic_within_guarantee_of_dp(prob):
    h = solve_heuristic(prob)
    dp = solve_dp_optimized(prob)
    gap = float(guarantee_gap(prob))
    assert dp.makespan <= h.makespan + 1e-9
    assert h.makespan <= dp.makespan + gap + 1e-9


@given(linear_problems(max_p=4, max_n=25))
@settings(max_examples=40, deadline=None)
def test_closed_form_equals_lp_rational(prob):
    """Theorems 1+2 and the exact LP must agree on the rational optimum."""
    from repro.core import solve_lp_rational

    rat = solve_rational(prob)
    _, t_lp = solve_lp_rational(prob)
    assert rat.duration == t_lp


@given(linear_problems(max_p=5, max_n=30))
@settings(max_examples=40, deadline=None)
def test_rational_lower_bounds_integer(prob):
    rat = solve_rational(prob)
    dp = solve_dp_optimized(prob)
    assert float(rat.duration) <= dp.makespan + 1e-9


# -- chain rate ----------------------------------------------------------------


@given(linear_problems(max_p=6))
@settings(max_examples=60, deadline=None)
def test_chain_rate_forms_agree(prob):
    assume(all(proc.alpha + proc.beta > 0 for proc in prob.processors))
    assert chain_rate(prob.processors) == chain_rate_sum_form(prob.processors)


@given(linear_problems(max_p=6))
@settings(max_examples=60, deadline=None)
def test_rational_optimum_dominates_single_processor(prob):
    """The rational optimum (with Theorem 2 exclusions) can't be slower than
    giving everything to any single processor — those distributions are all
    feasible.  (Note chain_rate alone does NOT have this property: it forces
    every processor to work, including ones with terrible links.)"""
    assume(all(proc.alpha + proc.beta > 0 for proc in prob.processors))
    rat = solve_rational(prob)
    best_single = min(proc.alpha + proc.beta for proc in prob.processors)
    assert rat.duration <= prob.n * best_single


# -- rounding --------------------------------------------------------------------


@given(rational_share_vectors())
@settings(max_examples=120, deadline=None)
def test_round_paper_invariants(data):
    shares, n = data
    out = round_paper(shares, n)
    assert sum(out) == n
    assert all(c >= 0 for c in out)
    for c, s in zip(out, shares):
        assert abs(Fraction(c) - s) < 1


@given(rational_share_vectors())
@settings(max_examples=120, deadline=None)
def test_round_largest_remainder_invariants(data):
    shares, n = data
    out = round_largest_remainder(shares, n)
    assert sum(out) == n
    for c, s in zip(out, shares):
        assert abs(Fraction(c) - s) < 1


# -- uniform counts ----------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=64))
def test_uniform_counts_partition(n, p):
    counts = uniform_counts(n, p)
    assert len(counts) == p
    assert sum(counts) == n
    assert max(counts) - min(counts) <= 1
    assert sorted(counts, reverse=True) == list(counts)
