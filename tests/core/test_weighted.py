"""Tests for the weighted-item extension."""

import numpy as np
import pytest

from repro.core import (
    Processor,
    TabulatedCost,
    WeightedScatterProblem,
    ZeroCost,
    solve_weighted_dp,
    solve_weighted_heuristic,
)


def procs3():
    return [
        Processor.linear("a", 0.01, 1e-4),
        Processor.linear("b", 0.02, 2e-4),
        Processor.linear("root", 0.015, 0.0),
    ]


def brute_force(problem):
    n, p = problem.n, problem.p
    assert p == 3
    return min(
        problem.makespan((c1, c2, n - c1 - c2))
        for c1 in range(n + 1)
        for c2 in range(n + 1 - c1)
    )


class TestWeightedProblem:
    def test_prefix_sums(self):
        prob = WeightedScatterProblem(procs3(), [1.0, 2.0, 3.0])
        np.testing.assert_allclose(prob.prefix, [0, 1, 3, 6])
        assert prob.total_weight == 6.0

    def test_block_weights(self):
        prob = WeightedScatterProblem(procs3(), [1.0, 2.0, 3.0, 4.0])
        assert prob.block_weights((1, 2, 1)) == [1.0, 5.0, 4.0]

    def test_finish_times_count_mode(self):
        prob = WeightedScatterProblem(procs3(), [1.0, 3.0], comm_mode="count")
        times = prob.finish_times((1, 0, 1))
        # P_a: comm 1 item at 1e-4 + comp weight 1 at 0.01
        assert times[0] == pytest.approx(1e-4 + 0.01)
        # idle P_b still "finishes" when the preceding comm ends (Eq. 1)
        assert times[1] == pytest.approx(1e-4)
        # root: elapsed comm (1e-4) + comp weight 3 at 0.015
        assert times[2] == pytest.approx(1e-4 + 0.045)

    def test_finish_times_weight_mode(self):
        prob = WeightedScatterProblem(procs3(), [1.0, 3.0], comm_mode="weight")
        times = prob.finish_times((1, 0, 1))
        assert times[0] == pytest.approx(1e-4 * 1.0 + 0.01)

    def test_validation(self):
        with pytest.raises(ValueError, match="> 0"):
            WeightedScatterProblem(procs3(), [1.0, 0.0])
        with pytest.raises(ValueError, match="comm_mode"):
            WeightedScatterProblem(procs3(), [1.0], comm_mode="bytes")
        with pytest.raises(ValueError):
            WeightedScatterProblem([], [1.0])

    def test_rejects_tabulated_costs(self):
        procs = [Processor("t", ZeroCost(), TabulatedCost([0.0, 1.0]))]
        with pytest.raises(ValueError, match="real-valued"):
            WeightedScatterProblem(procs, [1.0])

    def test_counts_validation(self):
        prob = WeightedScatterProblem(procs3(), [1.0, 2.0])
        with pytest.raises(ValueError):
            prob.makespan((1, 1, 1))
        with pytest.raises(ValueError):
            prob.makespan((2, -1, 1))

    def test_uniform_projection(self):
        prob = WeightedScatterProblem(procs3(), [1.0, 2.0, 3.0])
        assert prob.as_uniform_problem().n == 3


class TestWeightedDp:
    @pytest.mark.parametrize("mode", ["count", "weight"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, mode, seed):
        rng = np.random.default_rng(seed)
        w = rng.pareto(2.0, 25) + 0.2
        prob = WeightedScatterProblem(procs3(), w, comm_mode=mode)
        dp = solve_weighted_dp(prob)
        assert dp.makespan == pytest.approx(brute_force(prob))
        assert prob.makespan(dp.counts) == pytest.approx(dp.makespan)

    def test_uniform_weights_match_unweighted_dp(self):
        """All weights 1 must reduce to the ordinary integer problem."""
        from repro.core import ScatterProblem, solve_dp_optimized

        n = 40
        wprob = WeightedScatterProblem(procs3(), np.ones(n), comm_mode="count")
        dp_w = solve_weighted_dp(wprob)
        dp_u = solve_dp_optimized(ScatterProblem(procs3(), n))
        assert dp_w.makespan == pytest.approx(dp_u.makespan)

    def test_heavy_item_forced_whole(self):
        """A single huge item cannot be split; someone must swallow it."""
        w = [1.0, 1.0, 100.0, 1.0]
        prob = WeightedScatterProblem(procs3(), w)
        dp = solve_weighted_dp(prob)
        big_block = max(dp.block_weights)
        assert big_block >= 100.0

    def test_single_processor(self):
        prob = WeightedScatterProblem([procs3()[2]], [2.0, 3.0])
        dp = solve_weighted_dp(prob)
        assert dp.counts == (2,)
        assert dp.makespan == pytest.approx(0.015 * 5.0)

    def test_empty(self):
        prob = WeightedScatterProblem(procs3(), [])
        dp = solve_weighted_dp(prob)
        assert dp.counts == (0, 0, 0)
        assert dp.makespan == 0.0


class TestWeightedHeuristic:
    @pytest.mark.parametrize("mode", ["count", "weight"])
    def test_within_guarantee_of_dp(self, mode):
        rng = np.random.default_rng(5)
        w = rng.pareto(2.0, 60) + 0.2
        prob = WeightedScatterProblem(procs3(), w, comm_mode=mode)
        h = solve_weighted_heuristic(prob)
        dp = solve_weighted_dp(prob)
        assert dp.makespan <= h.makespan + 1e-12
        assert h.makespan <= dp.makespan + h.info["guarantee_gap"] + 1e-9

    def test_counts_partition(self):
        rng = np.random.default_rng(6)
        w = rng.uniform(0.5, 2.0, 100)
        prob = WeightedScatterProblem(procs3(), w)
        h = solve_weighted_heuristic(prob)
        assert sum(h.counts) == 100
        assert all(c >= 0 for c in h.counts)

    def test_near_optimal_for_small_items(self):
        """Many light items: the heuristic approaches the rational bound."""
        rng = np.random.default_rng(7)
        w = rng.uniform(0.9, 1.1, 3000)
        prob = WeightedScatterProblem(procs3(), w)
        h = solve_weighted_heuristic(prob)
        assert h.makespan <= h.info["rational_T"] * 1.02

    def test_rejects_affine(self):
        procs = [
            Processor.affine("a", 0.01, 1e-4, comp_intercept=0.1),
            Processor.linear("root", 0.015, 0.0),
        ]
        prob = WeightedScatterProblem(procs, [1.0, 2.0])
        with pytest.raises(ValueError, match="linear"):
            solve_weighted_heuristic(prob)

    def test_empty(self):
        prob = WeightedScatterProblem(procs3(), [])
        h = solve_weighted_heuristic(prob)
        assert h.counts == (0, 0, 0)
