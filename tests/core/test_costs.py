"""Unit tests for the cost-function model."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.costs import (
    AffineCost,
    CallableCost,
    LinearCost,
    PiecewiseLinearCost,
    TabulatedCost,
    ZeroCost,
    as_fraction,
    fit_affine,
    fit_linear,
)


class TestAsFraction:
    def test_int_passthrough(self):
        assert as_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(7, 3)
        assert as_fraction(f) is f or as_fraction(f) == f

    def test_float_exact_binary(self):
        assert as_fraction(0.5) == Fraction(1, 2)
        assert as_fraction(0.1) == Fraction(0.1)  # exact binary expansion

    def test_numpy_scalars(self):
        assert as_fraction(np.int64(5)) == Fraction(5)
        assert as_fraction(np.float64(0.25)) == Fraction(1, 4)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("inf"))

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            as_fraction("0.5")  # type: ignore[arg-type]


class TestZeroCost:
    def test_always_zero(self):
        z = ZeroCost()
        assert z(0) == 0.0
        assert z(10**9) == 0.0
        assert z.exact(5) == 0

    def test_many_shape(self):
        z = ZeroCost()
        out = z.many(np.arange(12).reshape(3, 4))
        assert out.shape == (3, 4)
        assert (out == 0).all()

    def test_flags(self):
        z = ZeroCost()
        assert z.is_linear and z.is_affine and z.is_increasing
        assert z.rate == 0 and z.intercept == 0


class TestLinearCost:
    def test_evaluation(self):
        c = LinearCost(0.5)
        assert c(4) == 2.0
        assert c.exact(3) == Fraction(3, 2)

    def test_exact_keeps_fractions(self):
        c = LinearCost(Fraction(1, 3))
        assert c.exact(9) == 3

    def test_many_matches_scalar(self):
        c = LinearCost(0.007)
        xs = np.arange(50)
        np.testing.assert_allclose(c.many(xs), [c(int(x)) for x in xs])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            LinearCost(-1e-9)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            LinearCost(1.0).exact(-1)

    def test_flags_and_accessors(self):
        c = LinearCost(2)
        assert c.is_linear and c.is_affine and c.is_increasing
        assert c.rate == 2 and c.intercept == 0

    def test_equality_and_hash(self):
        assert LinearCost(0.5) == LinearCost(Fraction(1, 2))
        assert hash(LinearCost(0.5)) == hash(LinearCost(Fraction(1, 2)))
        assert LinearCost(0.5) != LinearCost(0.25)

    def test_check_valid_noop(self):
        LinearCost(1.0).check_valid(100)  # no exception


class TestAffineCost:
    def test_zero_is_free_default(self):
        c = AffineCost(0.1, 3.0)
        assert c(0) == 0.0
        assert c.exact(0) == 0
        assert c(1) == pytest.approx(3.1)

    def test_pure_affine_mode(self):
        c = AffineCost(0.1, 3.0, zero_is_free=False)
        assert c(0) == 3.0
        assert c.exact(0) == 3

    def test_many_zero_handling(self):
        c = AffineCost(1.0, 5.0)
        out = c.many(np.array([0, 1, 2]))
        np.testing.assert_allclose(out, [0.0, 6.0, 7.0])

    def test_is_linear_iff_no_intercept(self):
        assert AffineCost(1.0, 0.0).is_linear
        assert not AffineCost(1.0, 0.5).is_linear

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            AffineCost(-1.0, 0.0)
        with pytest.raises(ValueError):
            AffineCost(1.0, -0.5)

    def test_check_valid_rejects_non_null_zero(self):
        with pytest.raises(ValueError):
            AffineCost(1.0, 1.0, zero_is_free=False).check_valid(10)
        AffineCost(1.0, 1.0).check_valid(10)  # zero_is_free: fine

    def test_accessors(self):
        c = AffineCost(Fraction(1, 4), Fraction(2))
        assert c.rate == Fraction(1, 4)
        assert c.intercept == 2


class TestTabulatedCost:
    def test_lookup(self):
        c = TabulatedCost([0.0, 1.0, 1.5, 4.0])
        assert c(2) == 1.5
        assert c.exact(3) == 4

    def test_monotonicity_detection(self):
        assert TabulatedCost([0, 1, 2, 2, 3]).is_increasing
        assert not TabulatedCost([0, 2, 1]).is_increasing

    def test_out_of_range(self):
        c = TabulatedCost([0.0, 1.0])
        with pytest.raises(IndexError):
            c.exact(5)

    def test_check_valid_coverage(self):
        c = TabulatedCost([0.0, 1.0, 2.0])
        c.check_valid(2)
        with pytest.raises(ValueError):
            c.check_valid(3)

    def test_check_valid_null_at_zero(self):
        with pytest.raises(ValueError):
            TabulatedCost([1.0, 2.0]).check_valid(1)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            TabulatedCost([0.0, -1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TabulatedCost([])

    def test_many(self):
        c = TabulatedCost([0.0, 2.0, 5.0])
        np.testing.assert_allclose(c.many(np.array([2, 0, 1])), [5.0, 0.0, 2.0])


class TestPiecewiseLinearCost:
    def test_interpolation(self):
        c = PiecewiseLinearCost([(0, 0), (10, 5), (20, 25)])
        assert c(5) == pytest.approx(2.5)
        assert c(15) == pytest.approx(15.0)
        assert c.exact(10) == 5

    def test_extrapolation_beyond_last(self):
        c = PiecewiseLinearCost([(0, 0), (10, 5)])
        assert c.exact(20) == 10  # final slope 0.5
        np.testing.assert_allclose(c.many(np.array([20, 30])), [10.0, 15.0])

    def test_must_start_at_origin(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost([(1, 0), (2, 1)])
        with pytest.raises(ValueError):
            PiecewiseLinearCost([(0, 1), (2, 2)])

    def test_strictly_increasing_x(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost([(0, 0), (5, 2), (5, 3)])

    def test_monotonicity_flag(self):
        assert PiecewiseLinearCost([(0, 0), (5, 2), (9, 2)]).is_increasing
        assert not PiecewiseLinearCost([(0, 0), (5, 2), (9, 1)]).is_increasing

    def test_exact_matches_float(self):
        c = PiecewiseLinearCost([(0, 0), (7, 3), (50, 20)])
        for x in [0, 3, 7, 20, 50, 80]:
            assert float(c.exact(x)) == pytest.approx(c(x))


class TestCallableCost:
    def test_wraps_function(self):
        c = CallableCost(lambda x: 0.5 * x * x, increasing=True)
        assert c(4) == 8.0
        assert c.exact(2) == 2
        assert c.is_increasing

    def test_default_not_increasing(self):
        assert not CallableCost(lambda x: x).is_increasing

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            CallableCost(lambda x: x).exact(-2)

    def test_many_via_default(self):
        c = CallableCost(lambda x: 2.0 * x)
        np.testing.assert_allclose(c.many(np.array([1, 2, 3])), [2.0, 4.0, 6.0])


class TestFits:
    def test_fit_linear_recovers_rate(self):
        xs = np.arange(1, 50)
        ts = 0.013 * xs
        fit = fit_linear(xs, ts)
        assert float(fit.rate) == pytest.approx(0.013)

    def test_fit_linear_noisy(self):
        rng = np.random.default_rng(1)
        xs = np.arange(1, 200)
        ts = 0.01 * xs + rng.normal(0, 1e-4, xs.size)
        assert float(fit_linear(xs, ts).rate) == pytest.approx(0.01, rel=1e-2)

    def test_fit_linear_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_linear([], [])

    def test_fit_linear_rejects_all_zero_counts(self):
        with pytest.raises(ValueError):
            fit_linear([0, 0], [1.0, 2.0])

    def test_fit_affine_recovers_both(self):
        xs = np.arange(1, 100)
        ts = 0.02 * xs + 1.5
        fit = fit_affine(xs, ts)
        assert float(fit.rate) == pytest.approx(0.02)
        assert float(fit.intercept) == pytest.approx(1.5)

    def test_fit_affine_clamps_negative_intercept(self):
        xs = np.array([1.0, 2.0, 3.0])
        ts = 0.5 * xs - 0.2
        fit = fit_affine(xs, ts)
        assert float(fit.intercept) == 0.0

    def test_fit_affine_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_affine([1], [0.5])
