"""Ordering policy behaviour beyond the linear case (affine links)."""

import pytest

from repro.core import (
    Processor,
    ScatterProblem,
    apply_policy,
    solve_heuristic,
)
from repro.core.ordering import comm_key


class TestCommKeyAffine:
    def test_latency_counts(self):
        """With equal rates, higher latency means a worse (larger) key."""
        low = Processor.affine("low", 0.01, 1e-5, comm_intercept=0.01)
        high = Processor.affine("high", 0.01, 1e-5, comm_intercept=0.5)
        assert comm_key(low, chunk=100) < comm_key(high, chunk=100)

    def test_chunk_size_can_flip_ranking(self):
        """A fat low-latency pipe loses to a thin zero-latency one for tiny
        chunks but wins for large ones — the key honours the chunk."""
        thin = Processor.affine("thin", 0.01, 1e-4)                 # no latency
        fat = Processor.affine("fat", 0.01, 1e-6, comm_intercept=0.05)
        assert comm_key(thin, chunk=10) < comm_key(fat, chunk=10)
        assert comm_key(fat, chunk=10_000) < comm_key(thin, chunk=10_000)

    def test_policy_uses_problem_scale(self):
        """The ordering policy evaluates keys at ~n/p, so the same machines
        order differently for small and large problems."""
        procs = [
            Processor.affine("thin", 0.01, 1e-4),
            Processor.affine("fat", 0.01, 1e-6, comm_intercept=0.05),
            Processor.linear("root", 0.01, 0.0),
        ]
        small = apply_policy(ScatterProblem(procs, 30), "bandwidth-desc")
        large = apply_policy(ScatterProblem(procs, 300_000), "bandwidth-desc")
        assert small.names[0] == "thin"
        assert large.names[0] == "fat"


class TestAffineOrderingEffect:
    def test_descending_helps_with_latency(self):
        """On an affine platform with spread latencies, Theorem 3's policy
        still beats the adversarial order (it is a heuristic there, §4.4)."""
        procs = [
            Processor.affine("a", 0.01, 5e-5, comm_intercept=0.4),
            Processor.affine("b", 0.01, 1e-5, comm_intercept=0.05),
            Processor.affine("c", 0.01, 3e-5, comm_intercept=0.2),
            Processor.linear("root", 0.01, 0.0),
        ]
        prob = ScatterProblem(procs, 20_000)
        desc = solve_heuristic(apply_policy(prob, "bandwidth-desc"))
        asc = solve_heuristic(apply_policy(prob, "bandwidth-asc"))
        assert desc.makespan <= asc.makespan + 1e-9

    def test_intercepts_shift_optimal_makespan(self):
        """Adding latency can only slow the affine optimum down."""
        base = [
            Processor.linear("a", 0.01, 5e-5),
            Processor.linear("b", 0.02, 1e-5),
            Processor.linear("root", 0.01, 0.0),
        ]
        lagged = [
            Processor.affine("a", 0.01, 5e-5, comm_intercept=0.3),
            Processor.affine("b", 0.02, 1e-5, comm_intercept=0.3),
            Processor.linear("root", 0.01, 0.0),
        ]
        t_base = solve_heuristic(ScatterProblem(base, 5000)).makespan
        t_lag = solve_heuristic(ScatterProblem(lagged, 5000)).makespan
        assert t_lag >= t_base
