"""Property-based tests for the weighted and gather extensions."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    Processor,
    ScatterProblem,
    WeightedScatterProblem,
    gather_makespan,
    solve_weighted_dp,
    solve_weighted_heuristic,
)


@st.composite
def weighted_problems(draw, max_p=4, max_n=25):
    p = draw(st.integers(min_value=1, max_value=max_p))
    n = draw(st.integers(min_value=0, max_value=max_n))
    mode = draw(st.sampled_from(["count", "weight"]))
    procs = []
    for i in range(p):
        alpha = draw(st.floats(min_value=1e-3, max_value=1.0, allow_nan=False))
        beta = 0.0 if i == p - 1 else draw(
            st.floats(min_value=0.0, max_value=0.3, allow_nan=False)
        )
        procs.append(Processor.linear(f"P{i}", alpha, beta))
    weights = [
        draw(st.floats(min_value=0.05, max_value=5.0, allow_nan=False))
        for _ in range(n)
    ]
    return WeightedScatterProblem(procs, weights, comm_mode=mode)


@given(weighted_problems())
@settings(max_examples=40, deadline=None)
def test_weighted_dp_counts_partition(prob):
    dp = solve_weighted_dp(prob)
    assert sum(dp.counts) == prob.n
    assert all(c >= 0 for c in dp.counts)
    assert prob.makespan(dp.counts) == pytest.approx(dp.makespan, rel=1e-9)


@given(weighted_problems(max_p=3, max_n=12))
@settings(max_examples=25, deadline=None)
def test_weighted_dp_optimal_vs_all_partitions(prob):
    """Exhaustive contiguous partitions on tiny instances."""
    assume(prob.p == 3)
    n = prob.n
    best = min(
        prob.makespan((c1, c2, n - c1 - c2))
        for c1 in range(n + 1)
        for c2 in range(n + 1 - c1)
    )
    assert solve_weighted_dp(prob).makespan == pytest.approx(best, rel=1e-9)


@given(weighted_problems())
@settings(max_examples=30, deadline=None)
def test_weighted_heuristic_within_gap(prob):
    h = solve_weighted_heuristic(prob)
    dp = solve_weighted_dp(prob)
    assert dp.makespan <= h.makespan + 1e-9
    assert h.makespan <= dp.makespan + h.info.get("guarantee_gap", 0.0) + 1e-9


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=60),
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_gather_mirror_identity_property(p, n, rnd):
    """gather(counts, σ) == scatter-Eq.1(counts, reverse(σ)) always."""
    procs = []
    for i in range(p):
        alpha = rnd.uniform(1e-3, 1.0)
        beta = 0.0 if i == p - 1 else rnd.uniform(0.0, 0.3)
        procs.append(Processor.linear(f"P{i}", alpha, beta))
    prob = ScatterProblem(procs, n)

    counts = list(prob.uniform_distribution())
    rnd.shuffle(counts)
    perm = list(range(p - 1))
    rnd.shuffle(perm)

    g = gather_makespan(prob, counts, perm)
    rev = list(reversed(perm)) + [p - 1]
    mirrored = prob.with_order(rev)
    s = mirrored.makespan([counts[i] for i in rev])
    assert g == pytest.approx(s, rel=1e-12, abs=1e-12)


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=50),
    st.randoms(use_true_random=False),
)
@settings(max_examples=30, deadline=None)
def test_gather_order_never_helps_below_any_single_bound(p, n, rnd):
    """Every gather schedule is at least as long as the heaviest single
    processor's compute+transfer (a simple lower bound)."""
    procs = []
    for i in range(p):
        alpha = rnd.uniform(1e-3, 1.0)
        beta = 0.0 if i == p - 1 else rnd.uniform(0.0, 0.3)
        procs.append(Processor.linear(f"P{i}", alpha, beta))
    prob = ScatterProblem(procs, n)
    counts = list(prob.uniform_distribution())
    perm = list(range(p - 1))
    rnd.shuffle(perm)
    g = gather_makespan(prob, counts, perm)
    bound = max(
        (proc.comp(c) + proc.comm(c)) if c > 0 else 0.0
        for proc, c in zip(prob.processors[:-1], counts[:-1])
    ) if p > 1 else 0.0
    assert g >= bound - 1e-12
