"""Unit tests for the incremental re-planning engine (repro.core.incremental).

The planner's contract is *byte-identity with the cold solve* — every test
here compares counts, float makespan, exact makespan, and chosen route
against an independent ``plan_scatter`` run, then checks the advertised
amount of state reuse.
"""

import random
from fractions import Fraction

import pytest

from repro.core import (
    IncrementalPlanner,
    PiecewiseLinearCost,
    Processor,
    ScatterProblem,
    TabulatedCost,
    ZeroCost,
    plan_scatter,
    scale_cost,
)
from repro.workloads import random_tabulated_problem

F = Fraction


def assert_byte_match(warm, cold):
    assert warm.counts == cold.counts
    assert warm.makespan == cold.makespan
    assert warm.makespan_exact == cold.makespan_exact
    assert warm.algorithm == cold.algorithm


@pytest.fixture
def tab_problem():
    """Increasing tabulated costs: the auto route is dp-fast."""
    return random_tabulated_problem(random.Random(11), 6, 40)


@pytest.fixture
def knee_problem():
    """Increasing piecewise costs with a wide domain (resizable n)."""
    rng = random.Random(3)

    def knee():
        x1 = rng.randint(1, 40)
        r1 = rng.uniform(1e-4, 5e-2)
        r2 = rng.uniform(1e-4, 5e-2)
        return PiecewiseLinearCost(
            [(0, 0), (x1, r1 * x1), (500, r1 * x1 + r2 * (500 - x1))]
        )

    procs = [Processor(f"P{i + 1}", knee(), knee()) for i in range(4)]
    procs.append(Processor("root", ZeroCost(), knee()))
    return ScatterProblem(procs, 60)


class TestRemoval:
    def test_front_removal_reuses_every_row(self, tab_problem):
        planner = IncrementalPlanner()
        planner.plan(tab_problem)
        survivor = ScatterProblem(tab_problem.processors[1:], tab_problem.n)
        warm = planner.plan(survivor)
        assert_byte_match(warm, plan_scatter(survivor, order_policy=None))
        assert warm.info["incremental"]["warm_rows"] == survivor.p
        assert warm.info["incremental"]["rows_computed"] == 0

    @pytest.mark.parametrize("victim", [1, 3])
    def test_middle_removal_reuses_suffix(self, tab_problem, victim):
        planner = IncrementalPlanner()
        planner.plan(tab_problem)
        procs = (
            tab_problem.processors[:victim] + tab_problem.processors[victim + 1 :]
        )
        survivor = ScatterProblem(procs, tab_problem.n)
        warm = planner.plan(survivor)
        assert_byte_match(warm, plan_scatter(survivor, order_policy=None))
        assert warm.info["incremental"]["warm_rows"] == survivor.p - victim

    def test_cascade_warm_starts_from_previous_survivors(self, tab_problem):
        planner = IncrementalPlanner()
        current = tab_problem
        planner.plan(current)
        while current.p > 2:
            current = ScatterProblem(current.processors[1:], current.n)
            warm = planner.plan(current)
            assert_byte_match(warm, plan_scatter(current, order_policy=None))
            assert warm.info["incremental"]["warm_rows"] == current.p
        assert planner.stats()["warm_plans"] == tab_problem.p - 2

    def test_identical_replan_is_pure_reconstruction(self, tab_problem):
        planner = IncrementalPlanner()
        first = planner.plan(tab_problem)
        again = planner.plan(tab_problem)
        assert_byte_match(again, first)
        assert again.info["incremental"]["rows_computed"] == 0


class TestPerturbation:
    @pytest.mark.parametrize("idx", [0, 2])
    def test_perturbed_link_rebuilds_only_front_rows(self, tab_problem, idx):
        planner = IncrementalPlanner()
        planner.plan(tab_problem)
        proc = tab_problem.processors[idx]
        slower = Processor(proc.name, scale_cost(proc.comm, F(3, 2)), proc.comp)
        procs = (
            tab_problem.processors[:idx]
            + (slower,)
            + tab_problem.processors[idx + 1 :]
        )
        perturbed = ScatterProblem(procs, tab_problem.n)
        warm = planner.plan(perturbed)
        assert_byte_match(warm, plan_scatter(perturbed, order_policy=None))
        assert warm.info["incremental"]["warm_rows"] == perturbed.p - 1 - idx


class TestResize:
    def test_shrink_serves_prefix_views(self, knee_problem):
        planner = IncrementalPlanner()
        planner.plan(knee_problem)
        smaller = ScatterProblem(knee_problem.processors, knee_problem.n // 2)
        warm = planner.plan(smaller)
        assert_byte_match(warm, plan_scatter(smaller, order_policy=None))
        assert warm.info["incremental"]["warm_rows"] == smaller.p

    def test_grow_recomputes_rows_but_stays_correct(self, knee_problem):
        planner = IncrementalPlanner()
        planner.plan(knee_problem)
        bigger = ScatterProblem(knee_problem.processors, knee_problem.n * 2)
        warm = planner.plan(bigger)
        assert_byte_match(warm, plan_scatter(bigger, order_policy=None))
        # Row extension is not bit-stable, so growth must not warm-start.
        assert warm.info["incremental"]["warm_rows"] == 0
        # ...but the grown state becomes the new warm source.
        shrunk = ScatterProblem(knee_problem.processors, knee_problem.n)
        again = planner.plan(shrunk)
        assert again.info["incremental"]["warm_rows"] == shrunk.p


class TestDpMonotone:
    def test_same_n_removal_reuses_choices(self, tab_problem):
        planner = IncrementalPlanner(algorithm="dp-monotone")
        planner.plan(tab_problem)
        survivor = ScatterProblem(tab_problem.processors[1:], tab_problem.n)
        warm = planner.plan(survivor)
        cold = plan_scatter(
            survivor, algorithm="dp-monotone", order_policy=None
        )
        assert_byte_match(warm, cold)
        assert warm.info["incremental"]["warm_rows"] == survivor.p

    def test_different_n_never_reuses(self, tab_problem):
        # dp-monotone choice rows are not prefix-stable in n; the planner
        # must refuse the warm start rather than risk a count divergence.
        planner = IncrementalPlanner(algorithm="dp-monotone")
        planner.plan(tab_problem)
        smaller = ScatterProblem(tab_problem.processors, tab_problem.n // 2)
        warm = planner.plan(smaller)
        cold = plan_scatter(
            smaller, algorithm="dp-monotone", order_policy=None
        )
        assert_byte_match(warm, cold)
        assert warm.info["incremental"]["warm_rows"] == 0


class TestStateManagement:
    def test_keep_states_bound_evicts_but_pins_largest(self, knee_problem):
        planner = IncrementalPlanner(keep_states=1)
        planner.plan(knee_problem)
        for victim in range(2):
            survivor = ScatterProblem(
                knee_problem.processors[victim + 1 :], knee_problem.n
            )
            planner.plan(survivor)
            assert planner.stats()["states"] == 1
        # The pinned (largest) state still warm-starts a nested kill set.
        nested = ScatterProblem(knee_problem.processors[3:], knee_problem.n)
        warm = planner.plan(nested)
        assert warm.info["incremental"]["warm_rows"] == nested.p

    def test_reset_drops_states(self, tab_problem):
        planner = IncrementalPlanner()
        planner.plan(tab_problem)
        assert planner.stats()["states"] == 1
        planner.reset()
        assert planner.stats()["states"] == 0
        replan = planner.plan(tab_problem)
        assert replan.info["incremental"]["warm_rows"] == 0

    def test_stats_ledger(self, tab_problem):
        planner = IncrementalPlanner()
        planner.plan(tab_problem)
        survivor = ScatterProblem(tab_problem.processors[1:], tab_problem.n)
        planner.plan(survivor)
        stats = planner.stats()
        assert stats["plans"] == 2
        assert stats["warm_plans"] == 1
        assert stats["rows_reused"] == survivor.p
        assert stats["rows_computed"] == tab_problem.p
        assert "warm" in repr(planner)


class TestDelegation:
    def test_linear_route_delegates_cold(self):
        problem = ScatterProblem(
            [
                Processor.linear("a", alpha=0.004, beta=1e-5),
                Processor.linear("b", alpha=0.009, beta=2e-5),
                Processor.linear("root", alpha=0.01, beta=0.0),
            ],
            n=50,
        )
        planner = IncrementalPlanner()
        warm = planner.plan(problem)
        assert_byte_match(warm, plan_scatter(problem, order_policy=None))
        assert warm.algorithm == "closed-form"
        assert planner.stats()["states"] == 0  # nothing to retain

    def test_callable_alias(self, tab_problem):
        planner = IncrementalPlanner()
        assert_byte_match(
            planner(tab_problem), plan_scatter(tab_problem, order_policy=None)
        )

    def test_unroutable_raises_like_plan_scatter(self):
        values = [F(0), F(5), F(2), F(9)]  # non-monotone: no dp-fast route
        tab = TabulatedCost(values)
        problem = ScatterProblem(
            [Processor("x", tab, tab), Processor("r", TabulatedCost([F(0)] * 4), tab)],
            n=3,
        )
        planner = IncrementalPlanner(exact_threshold=1)
        with pytest.raises(ValueError):
            planner.plan(problem)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            IncrementalPlanner(algorithm="no-such-kernel")
        with pytest.raises(ValueError):
            IncrementalPlanner(keep_states=0)

    def test_order_policy_matches_cold_facade(self):
        problem = random_tabulated_problem(random.Random(5), 5, 30)
        planner = IncrementalPlanner(order_policy="bandwidth-desc")
        warm = planner.plan(problem)
        cold = plan_scatter(problem, order_policy="bandwidth-desc")
        assert_byte_match(warm, cold)
