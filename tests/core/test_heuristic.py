"""Tests for the §3.3 LP heuristic and the Eq. 4 guarantee."""

from fractions import Fraction

import pytest

from repro.core import (
    Processor,
    ScatterProblem,
    guarantee_gap,
    relaxed_makespan,
    solve_dp_optimized,
    solve_heuristic,
    solve_lp_rational,
    solve_rational,
)
from repro.workloads import random_affine_problem, random_linear_problem


class TestGuaranteeGap:
    def test_formula(self):
        prob = ScatterProblem(
            [
                Processor.linear("a", alpha=2.0, beta=0.5),
                Processor.linear("b", alpha=3.0, beta=0.25),
                Processor.linear("root", alpha=1.0, beta=0.0),
            ],
            10,
        )
        # sum Tcomm(j,1) = 0.5 + 0.25 + 0 ; max Tcomp(i,1) = 3.0
        assert guarantee_gap(prob) == Fraction(3, 4) + 3

    def test_affine_includes_intercepts(self):
        prob = ScatterProblem(
            [
                Processor.affine("a", 1.0, 0.5, comp_intercept=2.0, comm_intercept=1.0),
                Processor.linear("root", 1.0, 0.0),
            ],
            5,
        )
        # Tcomm(a,1) = 0.5+1.0 ; Tcomp max = max(1+2, 1) = 3
        assert guarantee_gap(prob) == Fraction(3, 2) + 3


class TestLpRational:
    def test_matches_closed_form_on_linear(self, rng):
        """For linear costs the LP optimum equals the Theorem 1/2 solution."""
        for _ in range(10):
            prob = random_linear_problem(rng, rng.randint(2, 6), rng.randint(5, 100))
            shares, t = solve_lp_rational(prob)
            rat = solve_rational(prob)
            assert t == rat.duration  # both exact rationals
            assert sum(shares) == prob.n

    def test_scipy_backend_agrees(self, rng):
        for _ in range(5):
            prob = random_linear_problem(rng, rng.randint(2, 5), rng.randint(5, 50))
            _, t_exact = solve_lp_rational(prob, backend="exact")
            _, t_scipy = solve_lp_rational(prob, backend="scipy")
            assert float(t_scipy) == pytest.approx(float(t_exact), rel=1e-6)

    def test_scipy_shares_sum_exactly(self, rng):
        prob = random_linear_problem(rng, 5, 97)
        shares, _ = solve_lp_rational(prob, backend="scipy")
        assert sum(shares) == prob.n

    def test_unknown_backend(self, small_linear_problem):
        with pytest.raises(ValueError, match="backend"):
            solve_lp_rational(small_linear_problem, backend="cplex")


class TestHeuristic:
    def test_equation4_linear(self, rng):
        """T_opt <= T' <= T_opt + gap against the true integer optimum."""
        for _ in range(10):
            prob = random_linear_problem(rng, rng.randint(2, 5), rng.randint(5, 60))
            h = solve_heuristic(prob)
            dp = solve_dp_optimized(prob)
            gap = float(guarantee_gap(prob))
            assert dp.makespan <= h.makespan + 1e-12
            assert h.makespan <= dp.makespan + gap + 1e-9

    def test_equation4_affine_relaxed(self, rng):
        """Under the affine (intercepts-always-paid) reading,
        T'(relaxed) <= T_rat + gap, checked internally; and the rational LP
        value lower-bounds the relaxed cost of the rounded solution."""
        for _ in range(8):
            prob = random_affine_problem(rng, rng.randint(2, 5), rng.randint(5, 60))
            h = solve_heuristic(prob)
            assert h.info["relaxed_T"] <= h.info["upper_bound"]
            assert h.info["rational_T"] <= h.info["relaxed_T"]

    def test_relative_error_within_gap(self, rng):
        """Relative error vs the rational optimum is bounded by gap/T_rat."""
        prob = random_linear_problem(rng, 6, 5000)
        h = solve_heuristic(prob)
        rational = float(h.info["rational_T"])
        bound = float(guarantee_gap(prob)) / rational
        assert (h.makespan - rational) / rational <= bound + 1e-12

    def test_relative_error_tiny_on_table1_scale(self):
        """Table 1 rates at n = 100,000: error well below 1e-4 (paper: 6e-6
        at n = 817,101)."""
        from repro.workloads import table1_problem

        prob = table1_problem(100_000)
        h = solve_heuristic(prob)
        rational = float(h.info["rational_T"])
        assert (h.makespan - rational) / rational < 1e-4

    def test_counts_near_rational(self, small_linear_problem):
        h = solve_heuristic(small_linear_problem)
        for c, s in zip(h.counts, h.info["rational_shares"]):
            assert abs(Fraction(c) - s) < 1

    def test_rejects_non_affine(self):
        from repro.core import TabulatedCost, ZeroCost

        prob = ScatterProblem(
            [
                Processor("t", ZeroCost(), TabulatedCost([0.0, 1.0, 2.0])),
                Processor.linear("root", 1.0, 0.0),
            ],
            2,
        )
        with pytest.raises(ValueError, match="affine"):
            solve_heuristic(prob)

    def test_n_zero(self, tiny_linear_problem):
        h = solve_heuristic(tiny_linear_problem.with_n(0))
        assert h.counts == (0, 0, 0)

    def test_algorithm_label_carries_backend(self, small_linear_problem):
        h = solve_heuristic(small_linear_problem, backend="scipy")
        assert h.algorithm == "lp-heuristic[scipy]"


class TestRelaxedMakespan:
    def test_equals_true_makespan_for_linear(self, rng):
        prob = random_linear_problem(rng, 4, 30)
        counts = prob.uniform_distribution()
        assert float(relaxed_makespan(prob, counts)) == pytest.approx(
            prob.makespan(counts)
        )

    def test_overestimates_with_zero_shares_and_intercepts(self):
        prob = ScatterProblem(
            [
                Processor.affine("a", 1.0, 0.1, comm_intercept=5.0),
                Processor.linear("root", 1.0, 0.0),
            ],
            4,
        )
        counts = (0, 4)
        # True model: zero share => no transfer => no 5s latency.
        assert prob.makespan(counts) == pytest.approx(4.0)
        assert float(relaxed_makespan(prob, counts)) == pytest.approx(9.0)
