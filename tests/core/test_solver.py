"""Tests for the plan_scatter facade."""

import pytest

from repro.core import (
    ALGORITHMS,
    Processor,
    ScatterProblem,
    TabulatedCost,
    ZeroCost,
    plan_scatter,
)
from repro.core.costs import AffineCost


def linear_prob(n=100):
    return ScatterProblem(
        [
            Processor.linear("a", 0.01, 1e-4),
            Processor.linear("b", 0.02, 2e-4),
            Processor.linear("root", 0.01, 0.0),
        ],
        n,
    )


def affine_prob(n=100):
    return ScatterProblem(
        [
            Processor.affine("a", 0.01, 1e-4, comp_intercept=0.1),
            Processor.affine("b", 0.02, 2e-4, comm_intercept=0.05),
            Processor.linear("root", 0.01, 0.0),
        ],
        n,
    )


def tabulated_prob(n=20, monotone=True):
    vals = [0.0]
    for i in range(n):
        vals.append(vals[-1] + (0.1 if monotone or i % 5 else -0.02))
    t = TabulatedCost([max(v, 0.0) for v in vals])
    return ScatterProblem(
        [Processor("t", ZeroCost(), t), Processor.linear("root", 0.05, 0.0)], n
    )


class TestAutoSelection:
    def test_linear_uses_closed_form(self):
        res = plan_scatter(linear_prob())
        assert res.algorithm == "closed-form"

    def test_affine_uses_heuristic(self):
        res = plan_scatter(affine_prob())
        assert res.algorithm.startswith("lp-heuristic")

    def test_tabulated_monotone_uses_fast_kernel(self):
        res = plan_scatter(tabulated_prob(monotone=True))
        assert res.algorithm == "dp-fast"

    def test_tabulated_non_monotone_uses_dp_basic(self):
        res = plan_scatter(tabulated_prob(monotone=False))
        assert res.algorithm == "dp-basic"

    def test_large_increasing_instance_routed_to_fast_kernel(self):
        # Monotone costs no longer hit the exact_threshold guard at any n.
        res = plan_scatter(tabulated_prob(30), exact_threshold=10)
        assert res.algorithm == "dp-fast"
        assert sum(res.counts) == 30

    def test_large_non_monotonic_instance_refused(self):
        prob = tabulated_prob(30, monotone=False)
        with pytest.raises(ValueError, match="non-monotonic"):
            plan_scatter(prob, exact_threshold=10)


class TestExplicitAlgorithms:
    @pytest.mark.parametrize(
        "algorithm",
        ["dp-basic", "dp-basic-vectorized", "dp-optimized", "dp-fast",
         "dp-monotone", "closed-form", "lp-heuristic"],
    )
    def test_all_algorithms_solve_linear(self, algorithm):
        res = plan_scatter(linear_prob(), algorithm=algorithm)
        assert sum(res.counts) == 100
        assert res.makespan > 0

    def test_uniform_distribution(self):
        res = plan_scatter(linear_prob(10), algorithm="uniform", order_policy=None)
        assert res.counts == (4, 3, 3)
        assert res.algorithm == "uniform"

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            plan_scatter(linear_prob(), algorithm="quantum")

    def test_registry_is_complete(self):
        for algo in ALGORITHMS:
            if algo == "auto":
                continue
            plan_scatter(linear_prob(20), algorithm=algo)


class TestOrderPolicyIntegration:
    def test_default_reorders_by_bandwidth(self):
        prob = ScatterProblem(
            [
                Processor.linear("slowlink", 0.01, 9e-4),
                Processor.linear("fastlink", 0.01, 1e-5),
                Processor.linear("root", 0.01, 0.0),
            ],
            50,
        )
        res = plan_scatter(prob)
        assert res.problem.names == ("fastlink", "slowlink", "root")

    def test_none_keeps_order(self):
        prob = linear_prob()
        res = plan_scatter(prob, order_policy=None)
        assert res.problem.names == prob.names

    def test_ordering_improves_or_ties(self):
        prob = ScatterProblem(
            [
                Processor.linear("slowlink", 0.01, 9e-4),
                Processor.linear("fastlink", 0.01, 1e-5),
                Processor.linear("root", 0.01, 0.0),
            ],
            200,
        )
        ordered = plan_scatter(prob, algorithm="lp-heuristic")
        unordered = plan_scatter(prob, algorithm="lp-heuristic", order_policy=None)
        assert ordered.makespan <= unordered.makespan + 1e-12
