"""Tests for Algorithm 1 (dp_basic) and Algorithm 2 (dp_optimized).

Cross-validation strategy: Algorithm 1 (scalar float), Algorithm 1 (exact
rational), its vectorized variant, and Algorithm 2 must all find the same
optimal makespan, and on tiny instances that optimum must match an
exhaustive search over every composition of n.
"""

import random

import pytest

from repro.core import (
    Processor,
    ScatterProblem,
    TabulatedCost,
    ZeroCost,
    solve_dp_basic,
    solve_dp_basic_vectorized,
    solve_dp_optimized,
)
from repro.workloads import random_linear_problem, random_tabulated_problem

from ..conftest import brute_force_optimum


class TestDpBasic:
    def test_matches_brute_force_tiny(self, tiny_linear_problem):
        res = solve_dp_basic(tiny_linear_problem)
        assert res.makespan == pytest.approx(brute_force_optimum(tiny_linear_problem))

    def test_counts_are_valid(self, small_linear_problem):
        res = solve_dp_basic(small_linear_problem)
        assert sum(res.counts) == small_linear_problem.n
        assert all(c >= 0 for c in res.counts)

    def test_makespan_consistent_with_counts(self, small_linear_problem):
        res = solve_dp_basic(small_linear_problem)
        assert small_linear_problem.makespan(res.counts) == pytest.approx(res.makespan)

    def test_exact_mode_agrees_with_float(self, tiny_linear_problem):
        f = solve_dp_basic(tiny_linear_problem)
        e = solve_dp_basic(tiny_linear_problem, exact=True)
        assert f.makespan == pytest.approx(float(e.makespan_exact))
        assert e.info["exact"] is True

    def test_single_processor(self):
        prob = ScatterProblem([Processor.linear("only", 1.0, 0.0)], 7)
        res = solve_dp_basic(prob)
        assert res.counts == (7,)
        assert res.makespan == pytest.approx(7.0)

    def test_n_zero(self, tiny_linear_problem):
        prob = tiny_linear_problem.with_n(0)
        res = solve_dp_basic(prob)
        assert res.counts == (0, 0, 0)
        assert res.makespan == 0.0

    def test_handles_non_monotonic_costs(self):
        # A dip in the table: only Algorithm 1 is specified for this.
        dip = TabulatedCost([0.0, 5.0, 1.0, 6.0, 7.0, 8.0])
        prob = ScatterProblem(
            [
                Processor("weird", ZeroCost(), dip),
                Processor.linear("root", 2.0, 0.0),
            ],
            5,
        )
        res = solve_dp_basic(prob)
        assert res.makespan == pytest.approx(brute_force_optimum(prob))
        # Exploiting the dip: giving 'weird' exactly 2 items costs 1s.
        assert res.counts == (2, 3)

    def test_slow_link_gets_nothing(self):
        # A processor so badly connected that using it always hurts.
        prob = ScatterProblem(
            [
                Processor.linear("awful", alpha=0.1, beta=100.0),
                Processor.linear("root", alpha=1.0, beta=0.0),
            ],
            10,
        )
        res = solve_dp_basic(prob)
        assert res.counts == (0, 10)


class TestDpVectorized:
    def test_same_optimum_as_scalar(self, rng):
        for _ in range(10):
            prob = random_linear_problem(rng, rng.randint(2, 5), rng.randint(5, 60))
            a = solve_dp_basic(prob)
            b = solve_dp_basic_vectorized(prob)
            assert b.makespan == pytest.approx(a.makespan)
            assert sum(b.counts) == prob.n

    def test_brute_force_tiny(self, tiny_linear_problem):
        res = solve_dp_basic_vectorized(tiny_linear_problem)
        assert res.makespan == pytest.approx(brute_force_optimum(tiny_linear_problem))


class TestDpOptimized:
    def test_matches_algorithm1_on_linear(self, rng):
        for _ in range(15):
            prob = random_linear_problem(rng, rng.randint(2, 6), rng.randint(4, 80))
            a = solve_dp_basic(prob)
            b = solve_dp_optimized(prob)
            assert b.makespan == pytest.approx(a.makespan), prob

    def test_matches_algorithm1_on_monotone_tables(self, rng):
        for _ in range(8):
            prob = random_tabulated_problem(rng, rng.randint(2, 4), rng.randint(4, 40))
            a = solve_dp_basic(prob)
            b = solve_dp_optimized(prob)
            assert b.makespan == pytest.approx(a.makespan)

    def test_brute_force_tiny(self, tiny_linear_problem):
        res = solve_dp_optimized(tiny_linear_problem)
        assert res.makespan == pytest.approx(brute_force_optimum(tiny_linear_problem))

    def test_rejects_non_increasing(self):
        dip = TabulatedCost([0.0, 5.0, 1.0])
        prob = ScatterProblem(
            [Processor("w", ZeroCost(), dip), Processor.linear("root", 1.0, 0.0)], 2
        )
        with pytest.raises(ValueError, match="non-decreasing"):
            solve_dp_optimized(prob)

    def test_reports_inner_iterations(self, small_linear_problem):
        res = solve_dp_optimized(small_linear_problem)
        assert res.info["inner_iterations"] >= 0

    def test_fewer_candidates_than_basic(self, small_linear_problem):
        # The whole point of Algorithm 2: the scan visits far fewer e values
        # than Algorithm 1's full n(n+1)/2 per processor.
        res = solve_dp_optimized(small_linear_problem)
        n, p = small_linear_problem.n, small_linear_problem.p
        full_scan = (p - 1) * n * (n + 1) // 2
        assert res.info["inner_iterations"] < full_scan / 5

    def test_single_processor(self):
        prob = ScatterProblem([Processor.linear("only", 0.5, 0.0)], 9)
        res = solve_dp_optimized(prob)
        assert res.counts == (9,)

    def test_n_zero(self, tiny_linear_problem):
        res = solve_dp_optimized(tiny_linear_problem.with_n(0))
        assert res.counts == (0, 0, 0)


class TestDpAgainstBruteForceRandom:
    """Randomized exhaustive validation on very small instances."""

    @pytest.mark.parametrize("seed", range(6))
    def test_all_solvers_hit_brute_force(self, seed):
        rng = random.Random(seed)
        prob = random_linear_problem(
            rng, rng.randint(2, 3), rng.randint(3, 9),
            alpha_range=(0.1, 2.0), beta_range=(0.01, 0.5),
        )
        expected = brute_force_optimum(prob)
        assert solve_dp_basic(prob).makespan == pytest.approx(expected)
        assert solve_dp_basic_vectorized(prob).makespan == pytest.approx(expected)
        assert solve_dp_optimized(prob).makespan == pytest.approx(expected)
