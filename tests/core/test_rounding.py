"""Tests for the §3.3 rounding schemes."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import round_largest_remainder, round_paper
from repro.core.rounding import check_rounding

F = Fraction


class TestRoundPaper:
    def test_already_integral(self):
        assert round_paper([F(3), F(4), F(5)], 12) == (3, 4, 5)

    def test_simple_halves(self):
        out = round_paper([F(3, 2), F(5, 2), F(6)], 10)
        assert sum(out) == 10
        assert out[2] == 6  # integral share untouched
        assert sorted(out[:2]) == [1, 3] or sorted(out[:2]) == [2, 2]

    def test_invariants_random(self):
        import random

        rng = random.Random(42)
        for _ in range(200):
            p = rng.randint(1, 8)
            n = rng.randint(0, 50)
            # Random rational split of n.
            weights = [F(rng.randint(1, 100)) for _ in range(p)]
            total = sum(weights)
            shares = [w * n / total for w in weights]
            # Fix the residue exactly on the last share.
            shares[-1] += n - sum(shares)
            if shares[-1] < 0:
                continue
            out = round_paper(shares, n)
            assert sum(out) == n
            assert all(c >= 0 for c in out)
            for c, s in zip(out, shares):
                assert abs(F(c) - s) < 1

    def test_single_share(self):
        assert round_paper([F(7)], 7) == (7,)

    def test_two_thirds_pair(self):
        out = round_paper([F(2, 3), F(1, 3)], 1)
        assert sum(out) == 1
        assert set(out) == {0, 1}

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            round_paper([F(1, 2), F(1, 2)], 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            round_paper([F(-1, 2), F(5, 2)], 2)

    def test_tiny_shares_never_go_negative(self):
        # Many shares just above zero: rounding must stay >= 0.
        shares = [F(1, 10)] * 10
        out = round_paper(shares, 1)
        assert sum(out) == 1
        assert all(c in (0, 1) for c in out)


class TestRoundPaperAdversarial:
    """Stress cases engineered against the §3.3 sweep: integer-adjacent
    ties, accumulated error crossing zero, and all-fractional inputs."""

    def test_integer_adjacent_ties(self):
        # Shares sitting epsilon away from integers on both sides: the
        # accumulated-error rule must still land within distance 1.
        eps = F(1, 10**9)
        shares = [F(3) - eps, F(2) + eps, F(5) - eps, F(2) + eps]
        n = 12
        shares[-1] += n - sum(shares)
        out = check_rounding(shares, round_paper(shares, n), n)
        assert sum(out) == n

    def test_accumulated_error_crosses_zero(self):
        # Alternating fractional parts push the running error e above and
        # below zero repeatedly — each step must still round to floor or
        # ceil of its own share.
        shares = [F(3, 4), F(1, 4), F(3, 4), F(1, 4), F(3, 4), F(5, 4)]
        n = 4
        assert sum(shares) == n
        out = check_rounding(shares, round_paper(shares, n), n)
        assert all(abs(F(c) - s) < 1 for c, s in zip(out, shares))

    def test_all_fractional_inputs(self):
        # No share is integral; everything must be decided by the error
        # accumulation alone.
        shares = [F(1, 2)] * 8
        out = check_rounding(shares, round_paper(shares, 4), 4)
        assert sorted(out) == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_non_integral_total_rejected(self):
        with pytest.raises(ValueError):
            round_paper([F(1, 2)] * 9, 4)

    def test_sevenths_cycle(self):
        # 1/7 has a 6-digit repeating expansion; ten of them force the
        # error to wander before the final share absorbs the residue.
        shares = [F(1, 7)] * 10
        n = 2
        shares[-1] += n - sum(shares)
        out = check_rounding(shares, round_paper(shares, n), n)
        assert sum(out) == n
        assert all(c >= 0 for c in out)

    def test_mixed_signs_of_error_drift(self):
        rng_shares = [F(9, 10), F(1, 10), F(9, 10), F(1, 10), F(10, 10)]
        n = 3
        out = check_rounding(rng_shares, round_paper(rng_shares, n), n)
        assert sum(out) == n

    def test_zero_items(self):
        assert round_paper([F(0), F(0)], 0) == (0, 0)


class TestRoundLargestRemainder:
    def test_classic_apportionment(self):
        out = round_largest_remainder([F(14, 10), F(13, 10), F(3, 10)], 3)
        assert sum(out) == 3
        assert out[2] == 0  # smallest remainder loses

    def test_invariants_random(self):
        import random

        rng = random.Random(7)
        for _ in range(100):
            p = rng.randint(1, 6)
            n = rng.randint(0, 30)
            weights = [F(rng.randint(1, 50)) for _ in range(p)]
            total = sum(weights)
            shares = [w * n / total for w in weights]
            shares[-1] += n - sum(shares)
            if shares[-1] < 0:
                continue
            out = round_largest_remainder(shares, n)
            assert sum(out) == n
            for c, s in zip(out, shares):
                assert abs(F(c) - s) < 1


@st.composite
def rational_solutions(draw):
    """A random LP-style solution: non-negative rational shares whose sum
    is the integer ``n`` — exactly what the §3.3 rounding step receives."""
    p = draw(st.integers(min_value=1, max_value=12))
    n = draw(st.integers(min_value=0, max_value=500))
    weights = draw(
        st.lists(
            st.fractions(
                min_value=F(0), max_value=F(10_000), max_denominator=10_000
            ),
            min_size=p,
            max_size=p,
        )
    )
    total = sum(weights, F(0))
    if total == 0:
        weights = [F(1)] * p
        total = F(p)
    shares = [w * n / total for w in weights]
    # Exact-arithmetic residue repair on the largest share keeps every
    # entry non-negative and the sum exactly n.
    biggest = max(range(p), key=lambda i: shares[i])
    shares[biggest] += n - sum(shares, F(0))
    return shares, n


class TestRoundingProperties:
    """Hypothesis: Eq. 4's hypothesis |n_i − n'_i| < 1 and Σ n'_i = n must
    hold for *every* rational solution, not just solver-shaped ones."""

    @given(rational_solutions())
    @settings(max_examples=200, deadline=None)
    def test_round_paper_invariants(self, case):
        shares, n = case
        out = round_paper(shares, n)
        assert sum(out) == n
        assert len(out) == len(shares)
        assert all(isinstance(c, int) and c >= 0 for c in out)
        for count, share in zip(out, shares):
            assert abs(F(count) - share) < 1

    @given(rational_solutions())
    @settings(max_examples=200, deadline=None)
    def test_round_largest_remainder_invariants(self, case):
        shares, n = case
        out = round_largest_remainder(shares, n)
        assert sum(out) == n
        assert all(isinstance(c, int) and c >= 0 for c in out)
        for count, share in zip(out, shares):
            assert abs(F(count) - share) < 1

    @given(rational_solutions())
    @settings(max_examples=100, deadline=None)
    def test_integral_shares_are_fixed_points(self, case):
        shares, n = case
        floored = [F(int(s)) for s in shares]
        m = int(sum(floored))
        assert round_paper(floored, m) == tuple(int(s) for s in floored)


class TestCheckRounding:
    def test_passes_valid(self):
        assert check_rounding([F(3, 2), F(5, 2)], (2, 2), 4) == (2, 2)

    def test_rejects_wrong_sum(self):
        with pytest.raises(AssertionError):
            check_rounding([F(3, 2), F(5, 2)], (2, 3), 4)

    def test_rejects_distance_one(self):
        with pytest.raises(AssertionError):
            check_rounding([F(1), F(3)], (0, 4), 4)

    def test_rejects_negative_count(self):
        with pytest.raises(AssertionError):
            check_rounding([F(1, 2), F(7, 2)], (-1, 5), 4)

    def test_rejects_length_mismatch(self):
        with pytest.raises(AssertionError):
            check_rounding([F(1)], (1, 0), 1)
