"""Focused tests for smaller behaviours not covered elsewhere."""

from fractions import Fraction

import pytest

from repro.core import (
    Processor,
    ScatterProblem,
    round_largest_remainder,
    solve_heuristic,
)


class TestHeuristicRoundingParameter:
    def test_alternative_rounding_scheme(self, small_linear_problem):
        h = solve_heuristic(small_linear_problem, rounding=round_largest_remainder)
        assert sum(h.counts) == small_linear_problem.n
        # Still within the Eq. 4 envelope (checked internally, and here
        # against the rational optimum).
        assert h.makespan >= float(h.info["rational_T"]) - 1e-12
        assert h.makespan <= float(h.info["upper_bound"]) + 1e-12

    def test_two_schemes_close(self, small_linear_problem):
        a = solve_heuristic(small_linear_problem)
        b = solve_heuristic(small_linear_problem, rounding=round_largest_remainder)
        from repro.core import guarantee_gap

        assert abs(a.makespan - b.makespan) <= float(
            guarantee_gap(small_linear_problem)
        )


class TestProcessorRepr:
    def test_repr_contains_name(self):
        proc = Processor.linear("mynode", 0.01, 1e-5)
        assert "mynode" in repr(proc)

    def test_problem_repr(self):
        prob = ScatterProblem([Processor.linear("only", 1.0, 0.0)], 5)
        assert "p=1" in repr(prob) and "n=5" in repr(prob)


class TestExactEvaluationPrecision:
    def test_fraction_rates_stay_exact(self):
        prob = ScatterProblem(
            [
                Processor.linear("a", Fraction(1, 3), Fraction(1, 7)),
                Processor.linear("root", Fraction(1, 5), 0),
            ],
            21,
        )
        times = prob.finish_times_exact([7, 14])
        assert times[0] == Fraction(1, 7) * 7 + Fraction(1, 3) * 7
        assert times[1] == Fraction(1) + Fraction(14, 5)

    def test_makespan_exact_vs_float_tiny_rates(self):
        prob = ScatterProblem(
            [
                Processor.linear("a", 1e-9, 1e-12),
                Processor.linear("root", 1e-9, 0),
            ],
            1000,
        )
        exact = prob.makespan_exact([500, 500])
        assert float(exact) == pytest.approx(prob.makespan([500, 500]))


class TestDistributionResultInfo:
    def test_closed_form_info_fields(self, small_linear_problem):
        from repro.core import solve_closed_form

        res = solve_closed_form(small_linear_problem)
        assert "rational_duration" in res.info
        assert "active" in res.info
        assert len(res.info["rational_shares"]) == small_linear_problem.p

    def test_heuristic_info_fields(self, small_linear_problem):
        res = solve_heuristic(small_linear_problem)
        for key in ("rational_T", "guarantee_gap", "upper_bound", "relaxed_T"):
            assert key in res.info
