"""Tests for the Theorem 3 ordering policy and its alternatives."""

import random

import pytest

from repro.core import (
    POLICIES,
    Processor,
    ScatterProblem,
    apply_policy,
    brute_force_best_order,
    is_bandwidth_sorted,
    order_ascending_bandwidth,
    order_descending_bandwidth,
    ordering_permutation,
    solve_closed_form,
    solve_rational,
)
from repro.workloads import random_linear_problem


def spread_problem(n=100):
    return ScatterProblem(
        [
            Processor.linear("slow-link", alpha=0.01, beta=9e-4),
            Processor.linear("fast-link", alpha=0.01, beta=1e-5),
            Processor.linear("mid-link", alpha=0.01, beta=1e-4),
            Processor.linear("root", alpha=0.01, beta=0.0),
        ],
        n,
    )


class TestPermutations:
    def test_root_always_last(self):
        prob = spread_problem()
        for policy in ("bandwidth-desc", "bandwidth-asc", "fastest-first", "original"):
            perm = ordering_permutation(prob, policy)
            assert perm[-1] == prob.p - 1

    def test_bandwidth_desc_sorts_by_beta(self):
        ordered = order_descending_bandwidth(spread_problem())
        assert ordered.names == ("fast-link", "mid-link", "slow-link", "root")
        assert is_bandwidth_sorted(ordered)

    def test_bandwidth_asc_reverses(self):
        ordered = order_ascending_bandwidth(spread_problem())
        assert ordered.names == ("slow-link", "mid-link", "fast-link", "root")
        assert not is_bandwidth_sorted(ordered)

    def test_fastest_first_sorts_by_alpha(self):
        prob = ScatterProblem(
            [
                Processor.linear("slowcpu", alpha=0.9, beta=1e-5),
                Processor.linear("fastcpu", alpha=0.1, beta=2e-5),
                Processor.linear("root", alpha=0.5, beta=0.0),
            ],
            10,
        )
        ordered = apply_policy(prob, "fastest-first")
        assert ordered.names == ("fastcpu", "slowcpu", "root")

    def test_random_policy_deterministic_with_rng(self):
        prob = spread_problem()
        a = ordering_permutation(prob, "random", rng=random.Random(3))
        b = ordering_permutation(prob, "random", rng=random.Random(3))
        assert a == b

    def test_random_policy_deterministic_without_rng(self):
        """With rng=None the shuffle must derive its seed from the problem
        shape, never fall back to the unseeded global ``random`` module."""
        prob = spread_problem()
        a = ordering_permutation(prob, "random")
        b = ordering_permutation(prob, "random")
        assert a == b
        assert a[-1] == prob.p - 1

    def test_random_policy_immune_to_global_seed(self):
        prob = spread_problem()
        random.seed(1)
        a = ordering_permutation(prob, "random")
        random.seed(2)
        b = ordering_permutation(prob, "random")
        assert a == b

    def test_random_policy_varies_with_problem_shape(self):
        """Different instance shapes should (generically) shuffle
        differently — the derived seed depends on p and n."""
        perms = {
            ordering_permutation(spread_problem(n), "random")
            for n in (100, 101, 102, 103, 104, 105, 106, 107)
        }
        assert len(perms) > 1

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown ordering policy"):
            ordering_permutation(spread_problem(), "by-vibes")

    def test_policies_registry(self):
        assert "bandwidth-desc" in POLICIES and "random" in POLICIES


class TestTheorem3:
    def test_descending_beats_ascending_rational(self, rng):
        """The rational-optimal duration under Theorem 3's order is never
        worse than under the adversarial order."""
        for _ in range(20):
            prob = random_linear_problem(rng, rng.randint(3, 6), 1000)
            t_desc = solve_rational(order_descending_bandwidth(prob)).duration
            t_asc = solve_rational(order_ascending_bandwidth(prob)).duration
            assert t_desc <= t_asc

    def test_descending_is_globally_optimal_rational(self, rng):
        """Exhaustive check of Theorem 3 on small instances: no permutation
        beats descending bandwidth for the rational solution."""
        for _ in range(5):
            prob = random_linear_problem(rng, rng.randint(3, 5), 500)
            best = solve_rational(order_descending_bandwidth(prob)).duration

            import itertools

            p = prob.p
            for perm in itertools.permutations(range(p - 1)):
                candidate = prob.with_order(perm + (p - 1,))
                assert best <= solve_rational(candidate).duration

    def test_strict_improvement_when_bandwidths_differ(self):
        prob = spread_problem()
        t_desc = solve_rational(order_descending_bandwidth(prob)).duration
        t_asc = solve_rational(order_ascending_bandwidth(prob)).duration
        assert t_desc < t_asc


class TestBruteForceOrder:
    def test_finds_descending_for_linear(self, rng):
        prob = random_linear_problem(rng, 4, 60)
        best_prob, best_res, table = brute_force_best_order(prob, solve_closed_form)
        assert len(table) == 6  # 3! orderings
        # Integer effects can shuffle near-ties, but the optimum must be
        # within the rounding guarantee of the descending-order solution.
        from repro.core import guarantee_gap

        desc = solve_closed_form(order_descending_bandwidth(prob))
        assert best_res.makespan <= desc.makespan + 1e-12
        assert desc.makespan <= best_res.makespan + float(guarantee_gap(prob))

    def test_refuses_large_p(self, rng):
        prob = random_linear_problem(rng, 10, 5)
        with pytest.raises(ValueError, match="refused"):
            brute_force_best_order(prob, solve_closed_form)

    def test_table_contains_all_orders(self, rng):
        prob = random_linear_problem(rng, 3, 20)
        _, _, table = brute_force_best_order(prob, solve_closed_form)
        orders = {t[0] for t in table}
        assert orders == {(0, 1, 2), (1, 0, 2)}
