"""Tests for the §3.4 root-processor choice."""

import pytest

from repro.core import LinearCost, choose_root, solve_heuristic
from repro.core.costs import ZeroCost
from repro.core.root_selection import build_problem_for_root
from repro.workloads import random_star_platform


def star_setup():
    """Three machines: a fast hub, a slow leaf, and the data host."""
    names = ["hub", "leaf", "datahost"]
    comp = [LinearCost(0.01), LinearCost(0.01), LinearCost(0.01)]
    rates = {  # keys in sorted order
        ("hub", "leaf"): 1e-5,
        ("datahost", "hub"): 1e-5,
        ("datahost", "leaf"): 5e-4,
    }

    def link(src: int, dst: int):
        if src == dst:
            return ZeroCost()
        key = tuple(sorted((names[src], names[dst])))
        return LinearCost(rates[(key[0], key[1])])

    return names, comp, link


class TestBuildProblem:
    def test_root_is_last(self):
        names, comp, link = star_setup()
        problem, mapped = build_problem_for_root(names, comp, link, 100, root=0)
        assert problem.root.name == "hub"
        assert mapped[-1] == 0
        assert isinstance(problem.root.comm, ZeroCost)

    def test_mapping_covers_all(self):
        names, comp, link = star_setup()
        _, mapped = build_problem_for_root(names, comp, link, 100, root=1)
        assert sorted(mapped) == [0, 1, 2]

    def test_bad_root_index(self):
        names, comp, link = star_setup()
        with pytest.raises(ValueError):
            build_problem_for_root(names, comp, link, 100, root=5)

    def test_length_mismatch(self):
        names, comp, link = star_setup()
        with pytest.raises(ValueError):
            build_problem_for_root(names, comp[:-1], link, 100, root=0)


class TestChooseRoot:
    def test_data_host_pays_no_transfer(self):
        names, comp, link = star_setup()
        choice = choose_root(names, comp, link, 1000, data_host=2)
        for r, transfer, _, _ in choice.candidates:
            if r == 2:
                assert transfer == 0.0
            else:
                assert transfer > 0.0

    def test_total_is_transfer_plus_makespan(self):
        names, comp, link = star_setup()
        choice = choose_root(names, comp, link, 1000, data_host=2)
        for _, transfer, makespan, total in choice.candidates:
            assert total == pytest.approx(transfer + makespan)

    def test_picks_minimum(self):
        names, comp, link = star_setup()
        choice = choose_root(names, comp, link, 1000, data_host=2)
        assert choice.total_time == min(t for *_, t in choice.candidates)

    def test_expensive_transfer_keeps_root_on_data_host(self):
        """When moving data off C is costly, C itself wins."""
        names = ["far", "datahost"]
        comp = [LinearCost(0.01), LinearCost(0.01)]

        def link(src, dst):
            return ZeroCost() if src == dst else LinearCost(1.0)  # brutal WAN

        choice = choose_root(names, comp, link, 100, data_host=1)
        assert choice.root == 1
        assert choice.transfer_time == 0.0

    def test_better_connected_root_can_win(self):
        """A hub with cheap links beats a data host with awful ones, once
        the initial transfer is cheap enough."""
        names = ["hub", "w1", "w2", "datahost"]
        comp = [LinearCost(0.01)] * 4
        # datahost's own links are terrible except to the hub.
        def link(src, dst):
            if src == dst:
                return ZeroCost()
            pair = {names[src], names[dst]}
            if pair == {"hub", "datahost"}:
                return LinearCost(1e-6)
            if "hub" in pair:
                return LinearCost(1e-5)
            return LinearCost(8e-3)  # datahost <-> workers

        choice = choose_root(names, comp, link, 2000, data_host=3)
        assert choice.root == 0
        assert choice.transfer_time > 0.0

    def test_candidates_restriction(self):
        names, comp, link = star_setup()
        choice = choose_root(names, comp, link, 500, data_host=2, candidates=[1, 2])
        assert {r for r, *_ in choice.candidates} == {1, 2}

    def test_bad_data_host(self):
        names, comp, link = star_setup()
        with pytest.raises(ValueError):
            choose_root(names, comp, link, 10, data_host=9)

    def test_custom_solver(self):
        from repro.core import solve_closed_form

        names, comp, link = star_setup()
        a = choose_root(names, comp, link, 300, data_host=2, solver=solve_heuristic)
        b = choose_root(names, comp, link, 300, data_host=2, solver=solve_closed_form)
        assert a.root == b.root

    def test_on_random_platform(self, rng):
        platform = random_star_platform(rng, 6)
        names = platform.host_names
        choice = choose_root(
            names,
            platform.comp_costs(names),
            platform.link_oracle(names),
            500,
            data_host=0,
        )
        assert 0 <= choice.root < 6
        assert len(choice.candidates) == 6
