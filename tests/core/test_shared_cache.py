"""Tests for the shared-memory cost-table tier."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core.costs import (
    AffineCost,
    CallableCost,
    CostTableCache,
    LinearCost,
    PiecewiseLinearCost,
    TabulatedCost,
    ZeroCost,
    get_default_cost_cache,
    set_default_cost_cache,
)
from repro.core.shared_cache import SharedCostTableCache, stable_cost_key
from repro.obs.metrics import METRICS

from fractions import Fraction


def _shm_entries(namespace):
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith(namespace + "_")]
    except OSError:  # pragma: no cover - non-Linux
        return []


class TestStableCostKey:
    def test_kinds_distinct(self):
        keys = {
            stable_cost_key(ZeroCost()),
            stable_cost_key(LinearCost(0.25)),
            stable_cost_key(AffineCost(0.25, 1.5)),
            stable_cost_key(TabulatedCost([0.0, 1.0, 2.5])),
            stable_cost_key(PiecewiseLinearCost([(0, 0), (100, 25)])),
        }
        assert len(keys) == 5
        assert None not in keys

    def test_exact_not_float_rounded(self):
        # Fractions with the same float repr but different values must
        # yield different keys: naming is by *value identity*, exactly.
        a = LinearCost(Fraction(1, 3))
        b = LinearCost(Fraction(33333333333333333, 10**17))
        assert float(a.rate) == pytest.approx(float(b.rate))
        assert stable_cost_key(a) != stable_cost_key(b)

    def test_same_value_same_key(self):
        assert stable_cost_key(AffineCost(Fraction(1, 4), 2)) == stable_cost_key(
            AffineCost(Fraction(2, 8), 2)
        )

    def test_callable_has_no_key(self):
        assert stable_cost_key(CallableCost(lambda x: x * 0.1)) is None


class TestSharedCostTableCache:
    def test_is_a_cost_table_cache(self):
        cache = SharedCostTableCache(namespace="rsct1")
        try:
            assert isinstance(cache, CostTableCache)
            t = cache.table(LinearCost(0.5), 10)
            np.testing.assert_allclose(t, 0.5 * np.arange(11))
        finally:
            cache.unlink_all()

    def test_tables_match_process_tier(self):
        fns = [
            ZeroCost(),
            LinearCost(Fraction(1, 3)),
            AffineCost(0.01, 2.5),
            TabulatedCost(np.arange(30, dtype=float) ** 1.5),
            PiecewiseLinearCost([(0, 0), (10, 2.5), (20, 4.0)]),
        ]
        plain = CostTableCache()
        shared = SharedCostTableCache(namespace="rsct2")
        try:
            for fn in fns:
                np.testing.assert_array_equal(
                    shared.table(fn, 20), plain.table(fn, 20)
                )
        finally:
            shared.unlink_all()

    def test_second_instance_attaches_instead_of_building(self):
        a = SharedCostTableCache(namespace="rsct3")
        b = SharedCostTableCache(namespace="rsct3", owner=False)
        hits = METRICS.counter("core.cost_cache.shared.hits")
        misses = METRICS.counter("core.cost_cache.shared.misses")
        h0, m0 = hits.value, misses.value
        try:
            fn = AffineCost(0.125, 3.0)
            t1 = a.table(fn, 500)
            assert misses.value == m0 + 1  # published
            t2 = b.table(fn, 500)
            assert hits.value == h0 + 1  # attached, not rebuilt
            np.testing.assert_array_equal(t1, t2)
            assert b.shared_stats()["mapped"] == 1
            assert b.shared_stats()["created"] == 0
        finally:
            a.unlink_all()

    def test_views_are_read_only(self):
        cache = SharedCostTableCache(namespace="rsct4")
        try:
            t = cache.table(LinearCost(0.25), 50)
            with pytest.raises(ValueError):
                t[0] = 99.0
        finally:
            cache.unlink_all()

    def test_callable_cost_bypasses_shared_tier(self):
        cache = SharedCostTableCache(namespace="rsct5")
        try:
            fn = CallableCost(lambda x: x * 0.1)
            t = cache.table(fn, 10)
            np.testing.assert_allclose(t, 0.1 * np.arange(11))
            assert _shm_entries("rsct5") == []
            assert cache.shared_stats() == {"mapped": 0, "created": 0}
            # ...but still lands in the in-process LRU.
            cache.table(fn, 10)
            assert cache.stats()["hits"] == 1
        finally:
            cache.unlink_all()

    def test_local_lru_serves_repeats(self):
        cache = SharedCostTableCache(namespace="rsct6")
        try:
            fn = LinearCost(0.5)
            cache.table(fn, 100)
            mapped_after_first = cache.shared_stats()["mapped"]
            cache.table(fn, 100)
            cache.table(fn, 40)  # prefix of a cached table
            assert cache.stats()["hits"] == 2
            assert cache.shared_stats()["mapped"] == mapped_after_first
        finally:
            cache.unlink_all()

    def test_unready_segment_treated_as_absent(self):
        from multiprocessing import shared_memory

        cache = SharedCostTableCache(namespace="rsct7")
        fn = LinearCost(0.75)
        name = cache._segment_name(stable_cost_key(fn), 20)
        seg = shared_memory.SharedMemory(name=name, create=True, size=16 + 21 * 8)
        try:
            # Header still zero: a reader mid-publish must compute locally
            # (and lose the FileExistsError race on publish) — not spin,
            # not trust garbage.
            t = cache.table(fn, 20)
            np.testing.assert_allclose(t, 0.75 * np.arange(21))
        finally:
            seg.close()
            cache.unlink_all()

    def test_unlink_all_clears_namespace_and_is_idempotent(self):
        cache = SharedCostTableCache(namespace="rsct8")
        cache.table(LinearCost(0.5), 100)
        cache.table(AffineCost(0.5, 1.0), 100)
        assert len(_shm_entries("rsct8")) == 2
        cache.unlink_all()
        assert _shm_entries("rsct8") == []
        cache.unlink_all()  # second call must be a no-op, not an error

    def test_bad_namespace_rejected(self):
        with pytest.raises(ValueError):
            SharedCostTableCache(namespace="bad/../name")

    def test_bytes_metric(self):
        c = METRICS.counter("core.cost_cache.shared.bytes")
        b0 = c.value
        cache = SharedCostTableCache(namespace="rsct9")
        try:
            cache.table(LinearCost(0.5), 999)
            assert c.value == b0 + 1000 * 8
        finally:
            cache.unlink_all()


def _child_reads(namespace, n, out):
    """Forked child: attach to the parent's published table."""
    cache = SharedCostTableCache(namespace=namespace, owner=False)
    t = cache.table(LinearCost(0.5), n)
    out["sum"] = float(t.sum())
    out["mapped"] = cache.shared_stats()["mapped"]


class TestCrossProcess:
    def test_child_attaches_parents_table(self):
        ctx = multiprocessing.get_context("fork")
        cache = SharedCostTableCache(namespace="rsctx1")
        try:
            parent = cache.table(LinearCost(0.5), 2000)
            with ctx.Manager() as mgr:
                out = mgr.dict()
                proc = ctx.Process(target=_child_reads, args=("rsctx1", 2000, out))
                proc.start()
                proc.join(timeout=30)
                assert proc.exitcode == 0
                assert out["sum"] == float(parent.sum())
                assert out["mapped"] == 1  # attached, did not re-publish
        finally:
            cache.unlink_all()
        assert _shm_entries("rsctx1") == []


class TestDefaultCacheSwap:
    def test_set_and_restore(self):
        from repro.core.costs import DEFAULT_COST_CACHE

        assert get_default_cost_cache() is DEFAULT_COST_CACHE
        mine = CostTableCache()
        prev = set_default_cost_cache(mine)
        try:
            assert prev is DEFAULT_COST_CACHE
            assert get_default_cost_cache() is mine
        finally:
            set_default_cost_cache(None)
        assert get_default_cost_cache() is DEFAULT_COST_CACHE

    def test_solvers_route_through_swapped_cache(self):
        from repro.core.dp_fast import solve_dp_fast
        from repro.workloads.table1 import table1_problem

        mine = CostTableCache()
        set_default_cost_cache(mine)
        try:
            solve_dp_fast(table1_problem(200))
            assert mine.stats()["misses"] > 0
        finally:
            set_default_cost_cache(None)
