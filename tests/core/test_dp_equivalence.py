"""Randomized cross-check of every exact DP kernel, plus cache regressions.

The contract of the fast solver backbone: ``dp-basic``, ``dp-optimized``,
``dp-fast`` and ``dp-monotone`` all compute the *same optimal makespan* on
any increasing-cost instance (counts may break ties differently).  This
module grinds that claim over ~200 random instances spanning linear,
affine (intercepts) and rough tabulated cost shapes, varied ``p`` and
``n``, and verifies the :class:`CostTableCache` actually serves repeated
solves from memory.
"""

import random

import numpy as np
import pytest

from repro.core import (
    CostTableCache,
    LinearCost,
    PiecewiseLinearCost,
    Processor,
    ScatterProblem,
    ZeroCost,
    plan_scatter,
    solve_dp_basic,
    solve_dp_basic_vectorized,
    solve_dp_fast,
    solve_dp_monotone,
    solve_dp_optimized,
)
from repro.workloads import (
    random_affine_problem,
    random_linear_problem,
    random_tabulated_problem,
)

FAST_KERNELS = [solve_dp_fast, solve_dp_monotone]
ALL_EXACT = [solve_dp_basic, solve_dp_basic_vectorized, solve_dp_optimized] + FAST_KERNELS


def _random_increasing_problem(seed: int) -> ScatterProblem:
    """One of the three cost families, sized for a fast exhaustive DP."""
    rng = random.Random(seed)
    p = rng.randint(2, 6)
    family = seed % 3
    if family == 0:
        return random_linear_problem(rng, p, rng.randint(2, 80))
    if family == 1:
        return random_affine_problem(rng, p, rng.randint(2, 80))
    return random_tabulated_problem(rng, p, rng.randint(2, 40))


class TestKernelEquivalence:
    """The headline property: all exact solvers agree on the optimum."""

    @pytest.mark.parametrize("seed", range(200))
    def test_all_kernels_agree(self, seed):
        prob = _random_increasing_problem(seed)
        reference = solve_dp_optimized(prob)
        for solver in ALL_EXACT:
            res = solver(prob)
            assert res.makespan == pytest.approx(reference.makespan), (
                solver.__name__,
                prob,
            )
            # The counts must be a valid distribution achieving that makespan.
            assert sum(res.counts) == prob.n
            assert prob.makespan(res.counts) == pytest.approx(res.makespan)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fast_kernels_agree_at_scale(self, seed):
        """Larger-n agreement, where the fast paths (not the fallbacks) run."""
        rng = random.Random(seed)
        prob = random_affine_problem(rng, rng.randint(8, 16), 3_000)
        reference = solve_dp_optimized(prob)
        for solver in FAST_KERNELS:
            res = solver(prob)
            assert res.makespan == pytest.approx(reference.makespan, rel=1e-12)
            assert prob.makespan(res.counts) == pytest.approx(res.makespan)

    def test_non_affine_increasing_costs_use_exact_fallback(self):
        """Piecewise-linear comm (non-affine) exercises the general-scan row."""
        prob = ScatterProblem(
            [
                Processor(
                    "knee",
                    PiecewiseLinearCost([(0, 0), (10, 0.5), (40, 4.0)]),
                    LinearCost(0.05),
                ),
                Processor("lin", LinearCost(0.001), LinearCost(0.08)),
                Processor("root", ZeroCost(), LinearCost(0.06)),
            ],
            60,
        )
        reference = solve_dp_optimized(prob)
        for solver in FAST_KERNELS:
            res = solver(prob)
            assert res.makespan == pytest.approx(reference.makespan)
            assert res.info["rows_general_scan"] >= 1


class TestCostTableCache:
    def test_repeated_solve_hits_cache(self):
        rng = random.Random(11)
        prob = random_affine_problem(rng, 5, 120)
        cache = CostTableCache()

        first = solve_dp_fast(prob, cache=cache)
        assert first.info["cost_cache"]["misses"] == 2 * prob.p
        assert first.info["cost_cache"]["hits"] == 0

        second = solve_dp_fast(prob, cache=cache)
        assert second.info["cost_cache"]["hits"] == 2 * prob.p
        assert second.info["cost_cache"]["misses"] == 0
        assert second.makespan == first.makespan

    def test_cache_shared_across_solvers(self):
        rng = random.Random(12)
        prob = random_affine_problem(rng, 4, 100)
        cache = CostTableCache()
        solve_dp_optimized(prob, cache=cache)
        res = solve_dp_monotone(prob, cache=cache)
        assert res.info["cost_cache"]["hits"] == 2 * prob.p
        assert res.info["cost_cache"]["misses"] == 0

    def test_value_equal_cost_functions_share_entries(self):
        cache = CostTableCache()
        a = cache.table(LinearCost(0.01), 50)
        b = cache.table(LinearCost(0.01), 50)  # distinct object, equal value
        assert cache.stats() == {
            "hits": 1, "misses": 1, "waits": 0, "entries": 1,
        }
        np.testing.assert_array_equal(a, b)

    def test_prefix_view_served_from_larger_table(self):
        cache = CostTableCache()
        cache.table(LinearCost(0.5), 100)
        small = cache.table(LinearCost(0.5), 10)
        assert small.shape == (11,)
        assert cache.stats()["hits"] == 1
        # Growing past the stored table is a recompute.
        cache.table(LinearCost(0.5), 200)
        assert cache.stats()["misses"] == 2

    def test_tables_are_read_only(self):
        cache = CostTableCache()
        arr = cache.table(LinearCost(1.0), 10)
        with pytest.raises(ValueError):
            arr[0] = 99.0

    def test_lru_eviction_bounds_entries(self):
        cache = CostTableCache(maxsize=4)
        for i in range(10):
            cache.table(LinearCost(i + 1), 20)
        assert len(cache) == 4

    def test_clear(self):
        cache = CostTableCache()
        cache.table(LinearCost(1.0), 10)
        cache.clear()
        assert cache.stats() == {
            "hits": 0, "misses": 0, "waits": 0, "entries": 0,
        }


class TestAutoRouting:
    """Satellite: auto routes large increasing instances to the fast kernel."""

    def _piecewise_prob(self, n):
        return ScatterProblem(
            [
                Processor(
                    "knee",
                    PiecewiseLinearCost([(0, 0), (100, 0.002), (1000, 0.2)]),
                    LinearCost(0.0005),
                ),
                Processor("lin", LinearCost(1e-5), LinearCost(0.001)),
                Processor("root", ZeroCost(), LinearCost(0.0008)),
            ],
            n,
        )

    def test_large_increasing_instance_no_longer_raises(self):
        prob = self._piecewise_prob(8_000)  # well past exact_threshold
        res = plan_scatter(prob)
        assert res.algorithm == "dp-fast"
        assert sum(res.counts) == prob.n

    def test_explicit_kernels_via_facade(self):
        prob = self._piecewise_prob(300)
        fast = plan_scatter(prob, algorithm="dp-fast")
        mono = plan_scatter(prob, algorithm="dp-monotone")
        opt = plan_scatter(prob, algorithm="dp-optimized")
        assert fast.makespan == pytest.approx(opt.makespan)
        assert mono.makespan == pytest.approx(opt.makespan)
