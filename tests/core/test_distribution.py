"""Unit tests for ScatterProblem and distribution evaluation (Eq. 1-2)."""

from fractions import Fraction

import pytest

from repro.core import (
    DistributionResult,
    LinearCost,
    Processor,
    ScatterProblem,
    ZeroCost,
    uniform_counts,
)
from repro.core.costs import AffineCost


def simple_problem(n=10):
    return ScatterProblem(
        [
            Processor.linear("w1", alpha=1.0, beta=0.1),
            Processor.linear("w2", alpha=2.0, beta=0.2),
            Processor.linear("root", alpha=1.0, beta=0.0),
        ],
        n,
    )


class TestProcessor:
    def test_linear_constructor(self):
        p = Processor.linear("x", 0.5, 0.1)
        assert p.alpha == Fraction(1, 2)
        assert p.beta == Fraction(0.1)
        assert p.is_linear and p.is_affine and p.is_increasing

    def test_linear_zero_beta_gives_zero_cost(self):
        p = Processor.linear("root", 0.5, 0)
        assert isinstance(p.comm, ZeroCost)

    def test_affine_constructor(self):
        p = Processor.affine("x", 0.5, 0.1, comp_intercept=1.0, comm_intercept=0.2)
        assert not p.is_linear
        assert p.is_affine
        assert p.comp.intercept == 1
        assert p.comm.intercept == Fraction(0.2)

    def test_affine_zero_comm_gives_zero_cost(self):
        p = Processor.affine("root", 0.5, 0)
        assert isinstance(p.comm, ZeroCost)


class TestScatterProblemConstruction:
    def test_basic_properties(self):
        prob = simple_problem()
        assert prob.p == 3
        assert prob.n == 10
        assert prob.root.name == "root"
        assert prob.names == ("w1", "w2", "root")
        assert prob.is_linear and prob.is_affine and prob.is_increasing

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ScatterProblem([], 10)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            simple_problem(-1)

    def test_n_zero_allowed(self):
        prob = simple_problem(0)
        assert prob.makespan([0, 0, 0]) == 0.0

    def test_mixed_cost_flags(self):
        prob = ScatterProblem(
            [
                Processor("a", LinearCost(0.1), AffineCost(1.0, 0.5)),
                Processor.linear("root", 1.0, 0.0),
            ],
            5,
        )
        assert not prob.is_linear
        assert prob.is_affine


class TestEvaluation:
    def test_finish_times_eq1(self):
        prob = simple_problem()
        # counts (2, 3, 5): T1 = 0.1*2 + 1*2 = 2.2
        # T2 = 0.2 + 0.6 + 2*3 = 6.8 ; T3 = 0.8 + 0 + 5 = 5.8
        times = prob.finish_times([2, 3, 5])
        assert times == pytest.approx([2.2, 6.8, 5.8])

    def test_makespan_is_max(self):
        prob = simple_problem()
        assert prob.makespan([2, 3, 5]) == pytest.approx(6.8)

    def test_exact_matches_float(self):
        prob = simple_problem()
        exact = prob.finish_times_exact([2, 3, 5])
        floats = prob.finish_times([2, 3, 5])
        for e, f in zip(exact, floats):
            assert float(e) == pytest.approx(f)

    def test_comm_end_times_stair(self):
        prob = simple_problem()
        ends = prob.comm_end_times([2, 3, 5])
        assert ends == pytest.approx([0.2, 0.8, 0.8])
        assert ends == sorted(ends)  # the stair is non-decreasing

    def test_empty_share_is_free(self):
        prob = simple_problem()
        times = prob.finish_times([0, 0, 10])
        assert times[0] == 0.0
        assert times[1] == 0.0
        assert times[2] == pytest.approx(10.0)

    def test_wrong_length_rejected(self):
        prob = simple_problem()
        with pytest.raises(ValueError):
            prob.finish_times([1, 2])

    def test_negative_count_rejected(self):
        prob = simple_problem()
        with pytest.raises(ValueError):
            prob.makespan([-1, 6, 5])

    def test_validate_checks_sum(self):
        prob = simple_problem()
        with pytest.raises(ValueError):
            prob.validate([1, 2, 3])
        assert prob.validate([2, 3, 5]) == (2, 3, 5)


class TestReordering:
    def test_with_order(self):
        prob = simple_problem()
        reordered = prob.with_order([1, 0, 2])
        assert reordered.names == ("w2", "w1", "root")
        assert reordered.n == prob.n

    def test_with_order_rejects_non_permutation(self):
        prob = simple_problem()
        with pytest.raises(ValueError):
            prob.with_order([0, 0, 2])

    def test_order_changes_makespan(self):
        prob = simple_problem()
        a = prob.makespan([2, 3, 5])
        b = prob.with_order([1, 0, 2]).makespan([3, 2, 5])
        # same shares per processor, different serving order
        assert a != pytest.approx(b)

    def test_with_n(self):
        assert simple_problem().with_n(42).n == 42


class TestUniformCounts:
    def test_divisible(self):
        assert uniform_counts(12, 4) == (3, 3, 3, 3)

    def test_remainder_to_front(self):
        assert uniform_counts(14, 4) == (4, 4, 3, 3)

    def test_n_smaller_than_p(self):
        assert uniform_counts(2, 4) == (1, 1, 0, 0)

    def test_zero(self):
        assert uniform_counts(0, 3) == (0, 0, 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            uniform_counts(5, 0)
        with pytest.raises(ValueError):
            uniform_counts(-1, 3)

    def test_method_matches_function(self):
        prob = simple_problem(14)
        assert prob.uniform_distribution() == uniform_counts(14, 3)


class TestDistributionResult:
    def test_validation_on_construction(self):
        prob = simple_problem()
        with pytest.raises(ValueError):
            DistributionResult(prob, (1, 1, 1), 0.0, "x")

    def test_imbalance_ignores_idle(self):
        prob = simple_problem()
        res = DistributionResult(prob, (0, 0, 10), prob.makespan([0, 0, 10]), "x")
        assert res.imbalance == 0.0  # only the root worked

    def test_imbalance_range(self):
        prob = simple_problem()
        res = DistributionResult(prob, (2, 3, 5), prob.makespan([2, 3, 5]), "x")
        assert 0.0 <= res.imbalance <= 1.0

    def test_as_array(self):
        prob = simple_problem()
        res = DistributionResult(prob, (2, 3, 5), 0.0, "x")
        assert res.as_array().tolist() == [2, 3, 5]
