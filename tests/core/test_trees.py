"""Tree schedules (repro.core.trees): constructions, evaluation, planner.

The hypothesis suite covers the ISSUE's four tree properties — valid
rooted spanning tree over participating ranks, exact payload
conservation per subtree, the single-port constraint (no overlapping
sends per sender), and per-seed determinism — plus the structural
guarantees the planner advertises: flat-tree ≡ Eq. 1, the Träff lower
bound under every schedule, and tree-plan dominance over the flat plan.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Processor, ScatterProblem, plan_scatter, uniform_counts
from repro.core.trees import (
    DEFAULT_OPT_LIMIT,
    TREE_CONSTRUCTIONS,
    ScatterTree,
    binomial_tree,
    build_tree,
    flat_tree,
    optimal_tree,
    plan_scatter_tree,
    practical_tree,
    subtree_items,
    tree_depth,
    tree_finish_times,
    tree_finish_times_exact,
    tree_lower_bound,
    tree_makespan,
    tree_makespan_exact,
    tree_send_events,
)

F = Fraction

# -- strategies -------------------------------------------------------------

comp_rates = st.fractions(min_value=F(1, 1000), max_value=F(10))
comm_rates = st.fractions(min_value=F(1, 1000), max_value=F(2))
intercepts = st.fractions(min_value=F(0), max_value=F(1))


@st.composite
def tree_problems(draw, max_p=8, max_n=200):
    """Small affine/linear instances (root last, free root link)."""
    p = draw(st.integers(min_value=1, max_value=max_p))
    n = draw(st.integers(min_value=0, max_value=max_n))
    affine = draw(st.booleans())
    procs = []
    for i in range(p):
        alpha = draw(comp_rates)
        if i == p - 1:
            procs.append(Processor.linear(f"P{i}", alpha, 0))
        elif affine:
            procs.append(
                Processor.affine(
                    f"P{i}", alpha, draw(comm_rates), comm_intercept=draw(intercepts)
                )
            )
        else:
            procs.append(Processor.linear(f"P{i}", alpha, draw(comm_rates)))
    return ScatterProblem(procs, n)


@st.composite
def problems_with_counts(draw, max_p=8, max_n=200):
    problem = draw(tree_problems(max_p=max_p, max_n=max_n))
    if draw(st.booleans()):
        counts = tuple(uniform_counts(problem.n, problem.p))
    else:
        counts = plan_scatter(problem, order_policy=None).counts
    return problem, counts


# -- hypothesis properties --------------------------------------------------


@given(problems_with_counts())
@settings(max_examples=60, deadline=None)
def test_every_construction_is_a_valid_spanning_tree(case):
    """Satellite property (a): valid rooted spanning tree, root last."""
    problem, counts = case
    for name in TREE_CONSTRUCTIONS:
        try:
            tree = build_tree(name, problem, counts)
        except ValueError:
            continue  # optimal over its opt_limit gate
        tree.check_valid()
        assert tree.p == problem.p
        assert tree.root == problem.p - 1
        # Spanning: every position appears exactly once in preorder.
        assert sorted(tree.preorder()) == list(range(problem.p))


@given(problems_with_counts())
@settings(max_examples=60, deadline=None)
def test_subtree_payloads_conserve_items(case):
    """Satellite property (b): subtree payloads conserve items exactly."""
    problem, counts = case
    for name in TREE_CONSTRUCTIONS:
        try:
            tree = build_tree(name, problem, counts)
        except ValueError:
            continue
        sizes = subtree_items(tree, counts)
        assert sizes[tree.root] == problem.n
        for v in range(problem.p):
            assert sizes[v] == counts[v] + sum(sizes[c] for c in tree.children[v])
        # Every shipped message carries exactly its subtree payload.
        for ev in tree_send_events(problem, tree, counts):
            assert ev.items == sizes[ev.dst] > 0


@given(problems_with_counts())
@settings(max_examples=60, deadline=None)
def test_single_port_no_overlapping_sends(case):
    """Satellite property (c): per-sender messages never overlap."""
    problem, counts = case
    for name in TREE_CONSTRUCTIONS:
        try:
            tree = build_tree(name, problem, counts)
        except ValueError:
            continue
        by_src = {}
        for ev in tree_send_events(problem, tree, counts):
            assert ev.end - ev.start == problem.processors[ev.dst].comm.exact(ev.items)
            by_src.setdefault(ev.src, []).append(ev)
            # Store-and-forward: a relay sends only after it received.
            if ev.src != tree.root:
                recv_end = next(
                    e.end
                    for e in tree_send_events(problem, tree, counts)
                    if e.dst == ev.src
                )
                assert ev.start >= recv_end
        for sends in by_src.values():
            sends.sort(key=lambda e: e.start)
            for a, b in zip(sends, sends[1:]):
                assert a.end <= b.start


@given(problems_with_counts())
@settings(max_examples=40, deadline=None)
def test_constructions_and_planner_are_deterministic(case):
    """Satellite property (d): same inputs ⇒ identical trees and plans."""
    problem, counts = case
    for name in TREE_CONSTRUCTIONS:
        try:
            first = build_tree(name, problem, counts)
            second = build_tree(name, problem, counts)
        except ValueError:
            continue
        assert first == second
    a = plan_scatter_tree(problem, order_policy=None)
    b = plan_scatter_tree(problem, order_policy=None)
    assert a.counts == b.counts
    assert a.algorithm == b.algorithm
    assert a.makespan_exact == b.makespan_exact
    assert a.info["tree"] == b.info["tree"]


@given(problems_with_counts())
@settings(max_examples=60, deadline=None)
def test_flat_tree_reproduces_eq1_exactly(case):
    problem, counts = case
    tree = flat_tree(problem.p)
    finish = tree_finish_times_exact(problem, tree, counts)
    assert finish == problem.finish_times_exact(counts)
    assert tree_makespan_exact(problem, tree, counts) == problem.makespan_exact(counts)


@given(problems_with_counts())
@settings(max_examples=60, deadline=None)
def test_lower_bound_below_every_schedule(case):
    problem, counts = case
    lb = tree_lower_bound(problem, counts)
    for name in TREE_CONSTRUCTIONS:
        try:
            tree = build_tree(name, problem, counts)
        except ValueError:
            continue
        assert lb <= tree_makespan_exact(problem, tree, counts)


@given(tree_problems())
@settings(max_examples=40, deadline=None)
def test_tree_plan_never_worse_than_flat(problem):
    """The dominance the fuzzer's tree mode asserts, at property scale."""
    flat = plan_scatter(problem, order_policy=None)
    tree = plan_scatter_tree(problem, order_policy=None)
    assert tree.makespan_exact is not None
    assert tree.makespan_exact <= problem.makespan_exact(flat.counts)
    assert tree_lower_bound(problem, tree.counts) <= tree.makespan_exact


@given(tree_problems())
@settings(max_examples=40, deadline=None)
def test_exact_and_float_evaluations_agree(problem):
    counts = uniform_counts(problem.n, problem.p)
    for name in ("flat", "binomial", "practical"):
        tree = build_tree(name, problem, counts)
        exact = tree_finish_times_exact(problem, tree, counts)
        floats = tree_finish_times(problem, tree, counts)
        for e, f in zip(exact, floats):
            assert float(e) == pytest.approx(f, rel=1e-9, abs=1e-12)
        assert float(tree_makespan_exact(problem, tree, counts)) == pytest.approx(
            tree_makespan(problem, tree, counts), rel=1e-9, abs=1e-12
        )


# -- unit tests: constructions ----------------------------------------------


def affine_problem(p=6, n=120, *, intercept=F(1, 2)):
    procs = [
        Processor.affine(
            f"P{i}", F(1, 100) * (i + 1), F(1, 50), comm_intercept=intercept
        )
        for i in range(p - 1)
    ]
    procs.append(Processor.linear("root", F(1, 100), 0))
    return ScatterProblem(procs, n)


class TestConstructions:
    def test_flat_tree_shape(self):
        tree = flat_tree(4)
        assert tree.root == 3
        assert tree.children[3] == (0, 1, 2)
        assert tree_depth(tree) == 1

    def test_flat_tree_p1(self):
        tree = flat_tree(1)
        assert tree.root == 0
        assert tree_depth(tree) == 0

    def test_rejects_p0(self):
        with pytest.raises(ValueError, match="p >= 1"):
            flat_tree(0)
        with pytest.raises(ValueError, match="p >= 1"):
            binomial_tree(0)

    def test_binomial_tree_depth_is_logarithmic(self):
        for p in (2, 3, 4, 8, 16, 33):
            tree = binomial_tree(p)
            tree.check_valid()
            assert tree.root == p - 1
            assert tree_depth(tree) <= (p - 1).bit_length()

    def test_binomial_children_biggest_subtree_first(self):
        tree = binomial_tree(8)
        sizes = subtree_items(tree, [1] * 8)
        for kids in tree.children:
            kid_sizes = [sizes[c] for c in kids]
            assert kid_sizes == sorted(kid_sizes, reverse=True)

    def test_practical_tree_halves_payload_along_edges(self):
        problem = affine_problem(p=9, n=400)
        counts = uniform_counts(problem.n, problem.p)
        tree = practical_tree(problem, counts)
        tree.check_valid()
        sizes = subtree_items(tree, counts)
        for v in range(problem.p):
            par = tree.parent[v]
            if par >= 0 and par != tree.root and sizes[v] > 0:
                assert 2 * sizes[v] <= sizes[par] + counts[v]

    def test_idle_ranks_become_root_children(self):
        # Payload-aware constructions park zero-count ranks under the root
        # (binomial is payload-oblivious and keeps its fixed shape).
        problem = affine_problem(p=5, n=10)
        counts = (10, 0, 0, 0, 0)
        for name in ("flat", "practical", "optimal"):
            tree = build_tree(name, problem, counts)
            for idle in (1, 2, 3):
                assert tree.parent[idle] == tree.root

    def test_optimal_respects_opt_limit(self):
        problem = affine_problem(p=6, n=60)
        counts = uniform_counts(problem.n, problem.p)
        with pytest.raises(ValueError, match="opt_limit"):
            optimal_tree(problem, counts, opt_limit=2)

    def test_optimal_beats_flat_under_latency(self):
        # Large per-message latency: one relayed message saves root port time.
        problem = affine_problem(p=8, n=80, intercept=F(2))
        counts = uniform_counts(problem.n, problem.p)
        opt = optimal_tree(problem, counts)
        assert tree_makespan_exact(problem, opt, counts) < tree_makespan_exact(
            problem, flat_tree(problem.p), counts
        )
        assert tree_depth(opt) > 1

    def test_unknown_construction_rejected(self):
        problem = affine_problem(p=3, n=9)
        with pytest.raises(ValueError, match="unknown tree construction"):
            build_tree("fibonacci", problem, (3, 3, 3))


class TestScatterTreeType:
    def test_roundtrips_through_dict(self):
        tree = binomial_tree(7)
        assert ScatterTree.from_dict(tree.to_dict()) == tree

    def test_check_valid_rejects_two_roots(self):
        bad = ScatterTree(parent=(-1, -1), children=((), ()))
        with pytest.raises(ValueError, match="exactly one root"):
            bad.check_valid()

    def test_check_valid_rejects_cycle(self):
        bad = ScatterTree(parent=(-1, 2, 1), children=((), (2,), (1,)))
        with pytest.raises(ValueError, match="does not reach the root"):
            bad.check_valid()

    def test_check_valid_rejects_inconsistent_children(self):
        bad = ScatterTree(parent=(1, -1), children=((), ()))
        with pytest.raises(ValueError, match="missing from children"):
            bad.check_valid()

    def test_mismatched_p_rejected_by_evaluator(self):
        problem = affine_problem(p=4, n=8)
        with pytest.raises(ValueError, match="spans"):
            tree_makespan_exact(problem, flat_tree(3), (2, 2, 2, 2))


class TestLowerBound:
    def test_zero_items(self):
        problem = affine_problem(p=4, n=0)
        assert tree_lower_bound(problem, (0, 0, 0, 0)) == 0

    def test_single_processor(self):
        problem = ScatterProblem([Processor.linear("root", F(1, 10), 0)], 30)
        assert tree_lower_bound(problem, (30,)) == F(3)

    def test_latency_rounds_term(self):
        # 7 non-root holders ⇒ 8 participants ⇒ 3 α-rounds minimum.
        problem = affine_problem(p=8, n=70, intercept=F(5))
        counts = uniform_counts(problem.n, problem.p)
        assert tree_lower_bound(problem, counts) >= F(5) * 3

    def test_root_emission_term(self):
        problem = affine_problem(p=4, n=90, intercept=F(0))
        counts = (30, 30, 30, 0)
        # β_min = 1/50 across non-root links; 90 remote items.
        assert tree_lower_bound(problem, counts) >= F(90, 50)


# -- unit tests: planner ----------------------------------------------------


class TestPlanScatterTree:
    def test_flat_baseline_recorded(self):
        problem = affine_problem()
        result = plan_scatter_tree(problem, order_policy=None)
        assert result.algorithm.startswith("tree-")
        assert result.info["flat_makespan_exact"] >= result.makespan_exact
        assert result.info["lower_bound_exact"] <= result.makespan_exact
        assert result.info["counts_source"] in ("solver", "uniform")
        assert result.info["subtree_items"][result.info["tree"].root] == problem.n
        assert result.info["depth"] == tree_depth(result.info["tree"])

    def test_pinned_construction_uses_solver_counts(self):
        problem = affine_problem()
        flat = plan_scatter(problem, order_policy=None)
        result = plan_scatter_tree(
            problem, construction="binomial", order_policy=None
        )
        assert result.algorithm == "tree-binomial"
        assert result.counts == flat.counts
        assert result.info["construction"] == "binomial"

    def test_latency_instance_goes_deep(self):
        # Uniform compute forces every host to participate; the per-message
        # intercept then makes relayed sends beat the root's serial port.
        procs = [
            Processor.affine(f"P{i}", F(1, 10), F(1, 1000), comm_intercept=F(1))
            for i in range(11)
        ]
        procs.append(Processor.linear("root", F(1, 10), 0))
        problem = ScatterProblem(procs, 200)
        result = plan_scatter_tree(problem, order_policy=None)
        assert result.info["depth"] > 1
        assert result.makespan_exact < result.info["flat_makespan_exact"]

    def test_via_plan_scatter_topology(self):
        problem = affine_problem()
        direct = plan_scatter_tree(problem, order_policy=None)
        routed = plan_scatter(problem, topology="tree", order_policy=None)
        assert routed.counts == direct.counts
        assert routed.algorithm == direct.algorithm
        assert routed.makespan_exact == direct.makespan_exact

    def test_bad_topology_rejected(self):
        problem = affine_problem()
        with pytest.raises(ValueError, match="topology"):
            plan_scatter(problem, topology="ring")

    def test_opt_limit_gate_falls_back(self):
        # More participants than opt_limit: candidates drop 'optimal' only.
        problem = affine_problem(p=7, n=60)
        result = plan_scatter_tree(problem, order_policy=None, opt_limit=2)
        assert result.info["construction"] in ("flat", "binomial", "practical")

    def test_default_opt_limit_sane(self):
        assert 0 < DEFAULT_OPT_LIMIT <= 128
